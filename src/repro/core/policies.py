"""QoS policy objects: the paper's two paradigms plus their combination.

``PriorityPolicy``
    Priority-based management (sections 3.1-3.2): a CORBA priority,
    optionally mapped to thread priorities and/or DSCPs.  Figs 4-6 are
    exactly the (thread, dscp) on/off matrix of this policy.

``ReservationPolicy``
    Reservation-based management (sections 3.3-3.4): optional CPU
    reserve (C, T) and optional network reservation (rate, bucket).

``CombinedPolicy``
    Both at once — the paper's concluding direction ("combine
    priority-based mechanisms in conjunction with reservation
    mechanisms, using the priority paradigm to drive who gets
    reservations and to what degree").
"""

from __future__ import annotations

from typing import Optional

from repro.oskernel.reserve import EnforcementPolicy


class QosPolicyError(ValueError):
    """Invalid policy parameterization."""


class PriorityPolicy:
    """Priority-based end-to-end management."""

    def __init__(
        self,
        corba_priority: int,
        use_thread_priority: bool = True,
        use_dscp: bool = False,
    ) -> None:
        if not 0 <= corba_priority <= 32767:
            raise QosPolicyError(
                f"CORBA priority out of range: {corba_priority}"
            )
        self.corba_priority = int(corba_priority)
        self.use_thread_priority = use_thread_priority
        self.use_dscp = use_dscp

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PriorityPolicy({self.corba_priority}, "
            f"threads={self.use_thread_priority}, dscp={self.use_dscp})"
        )


class ReservationPolicy:
    """Reservation-based end-to-end management."""

    def __init__(
        self,
        cpu_compute: Optional[float] = None,
        cpu_period: Optional[float] = None,
        cpu_enforcement: EnforcementPolicy = EnforcementPolicy.SOFT,
        network_rate_bps: Optional[float] = None,
        network_bucket_bytes: int = 20_000,
        mandatory: bool = True,
    ) -> None:
        if (cpu_compute is None) != (cpu_period is None):
            raise QosPolicyError(
                "cpu_compute and cpu_period must be set together"
            )
        if cpu_compute is not None and (cpu_compute <= 0 or cpu_period <= 0):
            raise QosPolicyError("CPU reserve parameters must be positive")
        if network_rate_bps is not None and network_rate_bps <= 0:
            raise QosPolicyError("network rate must be positive")
        self.cpu_compute = cpu_compute
        self.cpu_period = cpu_period
        self.cpu_enforcement = cpu_enforcement
        self.network_rate_bps = network_rate_bps
        self.network_bucket_bytes = int(network_bucket_bytes)
        self.mandatory = mandatory

    @property
    def wants_cpu(self) -> bool:
        return self.cpu_compute is not None

    @property
    def wants_network(self) -> bool:
        return self.network_rate_bps is not None

    def __repr__(self) -> str:  # pragma: no cover
        cpu = (
            f"({self.cpu_compute}, {self.cpu_period})"
            if self.wants_cpu else "none"
        )
        network = (
            f"{self.network_rate_bps/1e3:.0f}kbps"
            if self.wants_network else "none"
        )
        return f"ReservationPolicy(cpu={cpu}, net={network})"


class CombinedPolicy:
    """Priority plus reservation, applied together."""

    def __init__(
        self, priority: PriorityPolicy, reservation: ReservationPolicy
    ) -> None:
        self.priority = priority
        self.reservation = reservation

    def __repr__(self) -> str:  # pragma: no cover
        return f"CombinedPolicy({self.priority!r}, {self.reservation!r})"
