"""The end-to-end QoS manager.

The integration point the paper works toward: one object that applies
policies across all four mechanisms.  "Although TimeSys Linux provides
COTS mechanisms for reserving OS CPU resources, it is the
responsibility of the higher level QuO and TAO middleware to determine
who gets the reserved capacity, how much, and for how long.  These
policy decisions will be performed via the higher level middleware
since it retains the end-to-end perspective."

The manager owns no mechanism itself; it coordinates:

* :class:`~repro.core.policies.PriorityPolicy` → thread priorities,
  GIOP priority propagation, DSCP marking;
* :class:`~repro.core.policies.ReservationPolicy` → CPU reserves via
  each host's resource kernel and network reservations via RSVP (on
  raw flows) or the A/V service (on streams);
* the section 6 research direction: :meth:`allocate_reservations`
  hands reserved capacity out in priority order until it runs out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.kernel import Kernel
from repro.oskernel.host import Host
from repro.oskernel.reserve import AdmissionError, Reserve
from repro.oskernel.thread import SimThread
from repro.net.intserv import FlowSpec, Reservation
from repro.net.topology import Network
from repro.orb.core import Orb
from repro.core.binding import EndToEndPriorityBinding
from repro.core.policies import (
    CombinedPolicy,
    PriorityPolicy,
    QosPolicyError,
    ReservationPolicy,
)


class ManagedFlow:
    """Bookkeeping for one flow under management."""

    def __init__(self, flow_id: str, src_host: str, dst_host: str) -> None:
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.priority_binding: Optional[EndToEndPriorityBinding] = None
        self.cpu_reserves: List[Reserve] = []
        self.network_reservation: Optional[Reservation] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ManagedFlow {self.flow_id!r}>"


class EndToEndQoSManager:
    """Coordinates priority- and reservation-based mechanisms."""

    def __init__(self, kernel: Kernel, network: Network) -> None:
        self.kernel = kernel
        self.network = network
        self.flows: Dict[str, ManagedFlow] = {}

    # ------------------------------------------------------------------
    # Priority-based management
    # ------------------------------------------------------------------
    def apply_priority(
        self,
        orb: Orb,
        policy: PriorityPolicy,
        stub=None,
        thread: Optional[SimThread] = None,
    ) -> EndToEndPriorityBinding:
        """Apply a priority policy to a stub and/or client thread."""
        binding = EndToEndPriorityBinding(
            orb, policy.corba_priority, use_dscp=policy.use_dscp
        )
        if thread is not None and policy.use_thread_priority:
            binding.apply_to_thread(thread)
        if stub is not None:
            stub.priority = policy.corba_priority
            if policy.use_dscp:
                stub.dscp = binding.dscp
        return binding

    # ------------------------------------------------------------------
    # Reservation-based management
    # ------------------------------------------------------------------
    def reserve_cpu(
        self,
        host: Host,
        thread: SimThread,
        policy: ReservationPolicy,
    ) -> Optional[Reserve]:
        """Admit the policy's CPU reserve on ``host`` for ``thread``."""
        if not policy.wants_cpu:
            return None
        try:
            return host.reserve_manager.request(
                thread,
                compute=policy.cpu_compute,
                period=policy.cpu_period,
                policy=policy.cpu_enforcement,
            )
        except AdmissionError:
            if policy.mandatory:
                raise
            return None

    def reserve_network(
        self,
        flow_id: str,
        src_host: str,
        dst_host: str,
        policy: ReservationPolicy,
    ):
        """Signal the policy's network reservation for a raw flow.

        Generator: drive from a simulation process.  Returns the
        :class:`~repro.net.intserv.Reservation` (possibly failed when
        the policy is not mandatory).
        """
        if not policy.wants_network:
            return None
        src_agent = self.network.nic_of(src_host).rsvp_agent
        dst_agent = self.network.nic_of(dst_host).rsvp_agent
        if src_agent is None or dst_agent is None:
            raise QosPolicyError(
                "both endpoints need RSVP agents (Network.enable_intserv)"
            )
        src_agent.announce_path(flow_id, dst_host)
        # Give PATH a few beats to install state along the route.
        for _ in range(10):
            yield 0.02
            if flow_id in dst_agent._path_state:
                break
        reservation = dst_agent.reserve(
            flow_id,
            FlowSpec(policy.network_rate_bps, policy.network_bucket_bytes),
        )
        if reservation.state == "pending":
            yield reservation.established
        if not reservation.is_established and policy.mandatory:
            raise QosPolicyError(
                f"network reservation for {flow_id!r} failed: "
                f"{reservation.failure_reason}"
            )
        flow = self.flows.setdefault(
            flow_id, ManagedFlow(flow_id, src_host, dst_host)
        )
        flow.network_reservation = reservation
        return reservation

    # ------------------------------------------------------------------
    # Combined management
    # ------------------------------------------------------------------
    def apply_combined(
        self,
        orb: Orb,
        policy: CombinedPolicy,
        stub=None,
        thread: Optional[SimThread] = None,
    ) -> Tuple[EndToEndPriorityBinding, Optional[Reserve]]:
        """Priority binding plus CPU reserve in one step."""
        binding = self.apply_priority(
            orb, policy.priority, stub=stub, thread=thread
        )
        reserve = None
        if thread is not None and policy.reservation.wants_cpu:
            reserve = self.reserve_cpu(orb.host, thread, policy.reservation)
        return binding, reserve

    def allocate_reservations(
        self,
        host: Host,
        requests: Sequence[Tuple[SimThread, int, ReservationPolicy]],
    ) -> Dict[str, Optional[Reserve]]:
        """Priority-driven reservation assignment (paper section 6).

        ``requests`` are (thread, corba_priority, reservation policy)
        triples.  Reserved CPU capacity is handed out in descending
        priority order; requests that no longer fit get no reserve
        (rather than failing the whole allocation), which realizes
        "using the priority paradigm to drive who gets reservations".
        """
        results: Dict[str, Optional[Reserve]] = {}
        ordered = sorted(requests, key=lambda item: -item[1])
        for thread, _priority, policy in ordered:
            try:
                results[thread.name] = host.reserve_manager.request(
                    thread,
                    compute=policy.cpu_compute,
                    period=policy.cpu_period,
                    policy=policy.cpu_enforcement,
                )
            except AdmissionError:
                results[thread.name] = None
        return results
