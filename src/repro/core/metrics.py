"""Measurement: the statistics the paper's evaluation reports.

Figures 4-6 plot per-message latency over time; Table 1 reports
"% Frames Delivered", "Average Latency" and "Standard Deviation"
under load; Table 2 reports per-algorithm average processing time and
standard deviation.  These recorders produce exactly those outputs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


class SeriesStats:
    """Summary statistics of one numeric series."""

    def __init__(self, values: Sequence[float]) -> None:
        self.count = len(values)
        if self.count == 0:
            self.mean = 0.0
            self.std = 0.0
            self.minimum = 0.0
            self.maximum = 0.0
            self.p50 = 0.0
            self.p90 = 0.0
            self.p95 = 0.0
            self.p99 = 0.0
            return
        self.mean = sum(values) / self.count
        variance = sum((v - self.mean) ** 2 for v in values) / self.count
        self.std = math.sqrt(variance)
        ordered = sorted(values)
        self.minimum = ordered[0]
        self.maximum = ordered[-1]
        self.p50 = _percentile(ordered, 0.50)
        self.p90 = _percentile(ordered, 0.90)
        self.p95 = _percentile(ordered, 0.95)
        self.p99 = _percentile(ordered, 0.99)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SeriesStats(n={self.count}, mean={self.mean:.6f}, "
            f"std={self.std:.6f})"
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    # Clamp so a caller-supplied quantile outside [0, 1] cannot index
    # past either end of the series.
    q = min(1.0, max(0.0, q))
    index = q * (len(ordered) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high:
        return ordered[low]
    fraction = index - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class TimeSeries:
    """(time, value) samples with windowing and binning helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def window(self, start: float, end: float) -> List[float]:
        """Values with start <= time < end."""
        return [
            value
            for time, value in zip(self.times, self.values)
            if start <= time < end
        ]

    def stats(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> SeriesStats:
        if start is None and end is None:
            return SeriesStats(self.values)
        lo = start if start is not None else float("-inf")
        hi = end if end is not None else float("inf")
        return SeriesStats(self.window(lo, hi))

    def binned(
        self, bin_width: float, reducer: str = "mean"
    ) -> List[Tuple[float, float]]:
        """Aggregate into (bin_start, reduced value) pairs.

        ``reducer``: "mean", "max", "count", or "sum".
        """
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        bins: dict = {}
        for time, value in zip(self.times, self.values):
            key = math.floor(time / bin_width)
            bins.setdefault(key, []).append(value)
        result = []
        for key in sorted(bins):
            values = bins[key]
            if reducer == "mean":
                reduced = sum(values) / len(values)
            elif reducer == "max":
                reduced = max(values)
            elif reducer == "count":
                reduced = float(len(values))
            elif reducer == "sum":
                reduced = float(sum(values))
            else:
                raise ValueError(f"unknown reducer {reducer!r}")
            result.append((key * bin_width, reduced))
        return result


class LatencyRecorder:
    """Per-event latency series (Figs 4-6; Table 1 latency columns)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.series = TimeSeries(name)

    def record(self, now: float, latency: float) -> None:
        self.series.record(now, latency)

    def stats(self, start: Optional[float] = None,
              end: Optional[float] = None) -> SeriesStats:
        return self.series.stats(start, end)

    @property
    def count(self) -> int:
        return len(self.series)


class DeliveryRecorder:
    """Sent/received accounting over time (Fig 7; Table 1 delivery %).

    Records each send and each delivery with its timestamp, then
    reports delivery fractions over any window — e.g. the paper's
    "under load" interval.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.sent = TimeSeries(f"{name}.sent")
        self.received = TimeSeries(f"{name}.received")
        self.latency = LatencyRecorder(f"{name}.latency")

    def record_sent(self, now: float, size: float = 1.0) -> None:
        self.sent.record(now, size)

    def record_received(
        self, now: float, sent_at: float, size: float = 1.0
    ) -> None:
        self.received.record(now, size)
        self.latency.record(now, now - sent_at)

    # ------------------------------------------------------------------
    def sent_count(self, start: float = None, end: float = None) -> int:
        return len(self._window(self.sent, start, end))

    def received_count(self, start: float = None, end: float = None) -> int:
        return len(self._window(self.received, start, end))

    def delivery_fraction(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        """Delivered/sent within a time window (keyed on send times).

        Received events are windowed by *receive* time, matching how
        the paper counts "frames delivered" while "under load"; with
        sub-second latencies the skew is negligible.
        """
        sent = self.sent_count(start, end)
        if sent == 0:
            return 1.0
        return min(1.0, self.received_count(start, end) / sent)

    @staticmethod
    def _window(series: TimeSeries, start, end) -> List[float]:
        lo = start if start is not None else float("-inf")
        hi = end if end is not None else float("inf")
        return series.window(lo, hi)

    def interarrival_jitter(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> SeriesStats:
        """Statistics of consecutive receive-time gaps.

        The paper calls smoothness out as its own QoS dimension
        ("controlling the jitter requires control all along the
        end-to-end path"); for a nominally periodic stream, the std of
        this series *is* the delivery jitter.
        """
        lo = start if start is not None else float("-inf")
        hi = end if end is not None else float("inf")
        times = [t for t in self.received.times if lo <= t < hi]
        gaps = [b - a for a, b in zip(times, times[1:])]
        return SeriesStats(gaps)

    def cumulative_counts(
        self, bin_width: float, horizon: float
    ) -> List[Tuple[float, int, int]]:
        """(time, cumulative sent, cumulative received) rows — the Fig 7
        'number of frames sent / received' curves."""
        rows = []
        sent_total = 0
        received_total = 0
        sent_bins = dict(self.sent.binned(bin_width, "count"))
        received_bins = dict(self.received.binned(bin_width, "count"))
        steps = int(math.ceil(horizon / bin_width))
        for step in range(steps + 1):
            time = step * bin_width
            sent_total += int(sent_bins.get(time, 0))
            received_total += int(received_bins.get(time, 0))
            rows.append((time, sent_total, received_total))
        return rows
