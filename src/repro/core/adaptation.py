"""Contract-driven frame filtering.

The Fig 7 / Table 1 adaptation: "The frame filtering cases dynamically
reacted to network load by filtering frames down to 10 fps or 2 fps,
whichever the network would support."

:class:`FrameFilteringQosket` packages that policy as a QuO qosket:

* a loss-rate system condition fed by the video pipeline;
* a contract with three regions — ``full`` (clean), ``degraded``
  (drop to 10 fps), ``severe`` (drop to 2 fps);
* region actions that set the sender-side
  :class:`~repro.media.filtering.FrameFilter` level.

Control-loop details that matter (each exists to kill a distinct
failure mode):

*Escalation dwell* — after a downgrade, stale losses from before the
downgrade are still inside the measurement window; escalating again
before the downgrade had time to act would always jump straight to the
bottom.  Escalation therefore waits ``dwell`` seconds.

*Upgrade patience with backoff* — once filtering clears the losses,
the sender cannot know whether the network would now sustain a higher
rate without *probing* (upgrading and watching).  A failed probe
(upgrade followed by a quick re-downgrade) doubles the patience before
the next probe, so a persistently congested network sees rare probes
instead of steady 3-second oscillation; a successful probe resets it.

*Staged recovery* — upgrades go LOW -> MEDIUM -> FULL one step at a
time, mirroring the downgrade ladder.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Kernel
from repro.media.filtering import FilterLevel, FrameFilter
from repro.quo.contract import Contract, Region
from repro.quo.qosket import Qosket
from repro.quo.syscond import LossRateSC


class FrameFilteringQosket(Qosket):
    """The paper's frame-filtering adaptation, packaged for reuse.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    frame_filter:
        The sender-side filter to control.
    degrade_threshold:
        Loss fraction that triggers a downgrade (default 10 %).
    upgrade_threshold:
        Loss fraction below which the network counts as clean
        (default 2 %).
    window / update_interval:
        Loss measurement window and cadence.
    dwell:
        Minimum time after a downgrade before escalating further
        (default: the window length).
    upgrade_patience:
        Clean time required before the first upgrade probe (default:
        twice the window); doubles on each failed probe, up to 8x.
    """

    def __init__(
        self,
        kernel: Kernel,
        frame_filter: FrameFilter,
        name: str = "frame-filtering",
        degrade_threshold: float = 0.10,
        upgrade_threshold: float = 0.02,
        window: float = 2.0,
        update_interval: float = 0.5,
        dwell: Optional[float] = None,
        upgrade_patience: Optional[float] = None,
    ) -> None:
        if not 0 <= upgrade_threshold < degrade_threshold <= 1:
            raise ValueError(
                "need 0 <= upgrade_threshold < degrade_threshold <= 1"
            )
        self._kernel = kernel
        self.frame_filter = frame_filter
        self.degrade_threshold = degrade_threshold
        self.upgrade_threshold = upgrade_threshold
        self.dwell = window if dwell is None else float(dwell)
        base_patience = (
            2.0 * window if upgrade_patience is None else float(upgrade_patience)
        )
        self.base_patience = base_patience
        self.max_patience = 8.0 * base_patience
        self._patience = base_patience
        self._clean_since: Optional[float] = None
        self._last_downgrade = float("-inf")
        self._last_upgrade: Optional[float] = None
        self.loss = LossRateSC(
            kernel, "loss", window=window, update_interval=update_interval
        )
        # Order matters: clean-time tracking must update before the
        # contract (attached in super().__init__) re-evaluates.
        self.loss.observe(self._track_cleanliness)
        contract = Contract(kernel, name, regions=[
            Region(
                "severe",
                self._severe_predicate,
                on_enter=lambda c: self._downgrade(FilterLevel.LOW),
            ),
            Region(
                "degraded",
                self._degraded_predicate,
                on_enter=lambda c: self._enter_degraded(),
            ),
            Region(
                "full",
                on_enter=lambda c: self._upgrade(FilterLevel.FULL),
            ),
        ])
        super().__init__(kernel, contract, conditions=[self.loss])
        self._heartbeat = None
        self._heartbeat_interval = float(update_interval)
        #: Optional FaultReporterSC; see :meth:`attach_fault_reporter`.
        self.fault_reporter = None

    # ------------------------------------------------------------------
    # Lifecycle: upgrades are time-driven (patience elapsing), not only
    # value-driven, so the contract needs a periodic re-evaluation even
    # while the loss value sits still at 0.
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        if self._heartbeat is None:
            self._heartbeat = self._kernel.schedule(
                self._heartbeat_interval, self._beat
            )

    def stop(self) -> None:
        super().stop()
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            self._heartbeat = None

    def _beat(self) -> None:
        self._heartbeat = self._kernel.schedule(
            self._heartbeat_interval, self._beat
        )
        self.contract.evaluate()

    # ------------------------------------------------------------------
    # Level transitions with probe-backoff bookkeeping
    # ------------------------------------------------------------------
    def _downgrade(self, level: FilterLevel) -> None:
        now = self._kernel.now
        if (
            self._last_upgrade is not None
            and self._last_downgrade != float("-inf")
            and now - self._last_upgrade <= self._patience
        ):
            # The last upgrade was a failed probe: back off.  (The
            # initial settle into "full" does not count as a probe.)
            self._patience = min(self.max_patience, self._patience * 2)
        self.frame_filter.set_level(level)
        self._last_downgrade = now
        self._clean_since = None

    def _enter_degraded(self) -> None:
        if self.frame_filter.level == FilterLevel.LOW:
            # Staged recovery LOW -> MEDIUM counts as an upgrade probe.
            self._upgrade(FilterLevel.MEDIUM)
        else:
            self._downgrade(FilterLevel.MEDIUM)

    def _upgrade(self, level: FilterLevel) -> None:
        now = self._kernel.now
        self.frame_filter.set_level(level)
        self._last_upgrade = now
        # Restart the cleanliness clock at *now*, not at None: the
        # loss condition only notifies observers on a value change, so
        # if loss sits identically at zero after the probe, a None
        # here would never be set again and staged recovery would
        # stall one level below full forever.
        self._clean_since = now
        # If this probe survives a full patience interval without a
        # downgrade, congestion has genuinely cleared: restore normal
        # patience.
        self._kernel.schedule(self._patience, self._confirm_probe, now)

    def _confirm_probe(self, probe_time: float) -> None:
        if self._last_downgrade < probe_time:
            self._patience = self.base_patience

    def _track_cleanliness(self, condition) -> None:
        if condition.value < self.upgrade_threshold:
            if self._clean_since is None:
                self._clean_since = self._kernel.now
        else:
            self._clean_since = None

    def _may_upgrade(self) -> bool:
        return (
            self._clean_since is not None
            and self._kernel.now - self._clean_since >= self._patience
        )

    def _dwelled(self) -> bool:
        return self._kernel.now - self._last_downgrade >= self.dwell

    # ------------------------------------------------------------------
    # Region predicates
    # ------------------------------------------------------------------
    def _severe_predicate(self, snapshot) -> bool:
        loss = snapshot["loss"]
        if self.frame_filter.level == FilterLevel.LOW:
            return not self._may_upgrade()
        return (
            self.frame_filter.level == FilterLevel.MEDIUM
            and loss > self.degrade_threshold
            and self._dwelled()
        )

    def _degraded_predicate(self, snapshot) -> bool:
        loss = snapshot["loss"]
        level = self.frame_filter.level
        if level == FilterLevel.MEDIUM:
            return not self._may_upgrade()
        if level == FilterLevel.LOW:
            # Reached only when severe released us: step up one level.
            return True
        return loss > self.degrade_threshold

    # ------------------------------------------------------------------
    # Fault-reporter integration
    # ------------------------------------------------------------------
    def attach_fault_reporter(self, reporter) -> None:
        """Shed load the moment a fault is reported.

        ``reporter`` is a
        :class:`~repro.quo.syscond.FaultReporterSC`.  Loss statistics
        need a window's worth of samples before a downgrade triggers;
        a reported outage is authoritative, so the qosket drops
        straight to the 2 fps floor and lets the ordinary staged
        recovery bring the rate back once the report clears *and* the
        network measures clean.
        """
        self.fault_reporter = reporter
        reporter.observe(self._on_fault_report)

    def _on_fault_report(self, condition) -> None:
        if condition.value:
            # Direct set, bypassing _downgrade: a fault-driven shed is
            # not a failed probe and must not inflate the probe
            # backoff.
            self.frame_filter.set_level(FilterLevel.LOW)
            self._last_downgrade = self._kernel.now
            self._clean_since = None
        else:
            # All faults cleared: restart clean-time tracking and drop
            # any probe backoff accumulated *during* the outage — it
            # measured the faulted network, not the restored one — so
            # the staged upgrade ladder runs at base patience.
            self._clean_since = None
            self._patience = self.base_patience
            self._last_upgrade = None
        self.contract.evaluate()

    # ------------------------------------------------------------------
    # Pipeline hooks
    # ------------------------------------------------------------------
    def record_sent(self) -> None:
        self.loss.record_sent()

    def record_received(self) -> None:
        self.loss.record_received()

    @property
    def level(self) -> FilterLevel:
        return self.frame_filter.level
