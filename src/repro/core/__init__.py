"""The paper's primary contribution: integrated end-to-end QoS control.

Everything below this package exists in layered isolation — priorities
in the OS substrate, DSCPs and reservations in the network, CORBA
priorities in the ORB, contracts in QuO.  This package couples them,
as the paper does, into two composable end-to-end approaches plus
their combination:

``binding``
    End-to-end **priority** binding: one CORBA priority drives client
    thread priority, GIOP service-context propagation, server dispatch
    lane priority, and the DiffServ codepoint (Fig 2's propagation
    chain).

``policies`` / ``manager``
    Policy objects (priority-based, reservation-based, combined) and
    the :class:`EndToEndQoSManager` that applies them to applications,
    threads, and flows — including the paper's section 6 research
    direction of letting priorities drive who gets reservations.

``adaptation``
    The contract-driven frame-filtering qosket: the application-level
    adaptation the paper couples with reservations in Fig 7/Table 1.

``metrics``
    Latency/jitter/delivery recorders producing exactly the statistics
    the paper's tables report.
"""

from repro.core.adaptation import FrameFilteringQosket
from repro.core.binding import EndToEndPriorityBinding, PropagationHop
from repro.core.manager import EndToEndQoSManager, ManagedFlow
from repro.core.metrics import (
    DeliveryRecorder,
    LatencyRecorder,
    SeriesStats,
    TimeSeries,
)
from repro.core.policies import (
    CombinedPolicy,
    PriorityPolicy,
    QosPolicyError,
    ReservationPolicy,
)

__all__ = [
    "CombinedPolicy",
    "DeliveryRecorder",
    "EndToEndPriorityBinding",
    "EndToEndQoSManager",
    "FrameFilteringQosket",
    "LatencyRecorder",
    "ManagedFlow",
    "PriorityPolicy",
    "PropagationHop",
    "QosPolicyError",
    "ReservationPolicy",
    "SeriesStats",
    "TimeSeries",
]
