"""End-to-end priority binding (the Figure 2 propagation chain).

One CORBA priority, applied everywhere it matters:

* the client application thread's native priority (via the client
  ORB's priority mapping for the client host's OS);
* the stub's request priority, so the GIOP ``RTCorbaPriority`` service
  context propagates it to every server, whose thread pools re-map it
  to *their* OS's native range;
* the DiffServ codepoint, via the ORB's network priority mapping, so
  routers honour the same importance level.

:meth:`EndToEndPriorityBinding.describe` reproduces Fig 2's worked
example as data: the native priority and DSCP at each hop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.diffserv import Dscp
from repro.oskernel.thread import SimThread
from repro.orb.core import Orb


class PropagationHop:
    """One row of the Fig 2 chain: where a priority landed."""

    __slots__ = ("host", "os_type", "role", "corba_priority",
                 "native_priority", "dscp")

    def __init__(self, host, os_type, role, corba_priority,
                 native_priority, dscp) -> None:
        self.host = host
        self.os_type = os_type
        self.role = role
        self.corba_priority = corba_priority
        self.native_priority = native_priority
        self.dscp = dscp

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Hop {self.role} {self.host} ({self.os_type.value}): "
            f"corba={self.corba_priority} native={self.native_priority} "
            f"dscp={self.dscp.name if self.dscp else None}>"
        )


class EndToEndPriorityBinding:
    """Applies one CORBA priority across client thread, wire, and net.

    Parameters
    ----------
    orb:
        The client-side ORB (its mapping manager supplies both the
        native and DSCP mappings).
    corba_priority:
        The end-to-end RT-CORBA priority (0..32767).
    use_dscp:
        When True, requests are marked with the mapped codepoint (the
        paper's RT-CORBA + DiffServ integration); when False only
        thread priorities are managed (the Fig 5 arm).
    """

    def __init__(
        self,
        orb: Orb,
        corba_priority: int,
        use_dscp: bool = False,
    ) -> None:
        self.orb = orb
        self.corba_priority = int(corba_priority)
        self.use_dscp = use_dscp

    # ------------------------------------------------------------------
    @property
    def dscp(self) -> Optional[Dscp]:
        if not self.use_dscp:
            return None
        return self.orb.mapping_manager.to_dscp(self.corba_priority)

    def native_priority_on(self, host) -> int:
        return self.orb.mapping_manager.to_native(
            self.corba_priority, host.os_type
        )

    def apply_to_thread(self, thread: SimThread) -> int:
        """Set the client thread's native priority; returns it."""
        native = self.orb.mapping_manager.to_native(
            self.corba_priority, self.orb.host.os_type
        )
        thread.set_priority(native)
        return native

    def apply_to_stub(self, stub) -> None:
        """Configure a generated stub (or delegate) with this binding."""
        stub.priority = self.corba_priority
        if self.use_dscp:
            stub.dscp = self.dscp

    def describe(self, server_hosts) -> List[PropagationHop]:
        """The full propagation chain, Fig 2 style.

        ``server_hosts`` are the downstream hosts the request visits
        (middle tiers and final servers); each re-maps the same CORBA
        priority into its own native range.
        """
        mapping = self.orb.mapping_manager
        hops = [
            PropagationHop(
                host=self.orb.host.name,
                os_type=self.orb.host.os_type,
                role="client",
                corba_priority=self.corba_priority,
                native_priority=mapping.to_native(
                    self.corba_priority, self.orb.host.os_type
                ),
                dscp=self.dscp,
            )
        ]
        for host in server_hosts:
            hops.append(
                PropagationHop(
                    host=host.name,
                    os_type=host.os_type,
                    role="server",
                    corba_priority=self.corba_priority,
                    native_priority=mapping.to_native(
                        self.corba_priority, host.os_type
                    ),
                    dscp=self.dscp,
                )
            )
        return hops
