"""The ORB core: request lifecycle, connection cache, dispatching.

Client side
-----------

:meth:`Orb.invoke` marshals a request (charging marshaling CPU to the
calling thread), selects a connection keyed by (endpoint, DSCP) — a
separate connection per network priority, mirroring RT-CORBA banded
connections — and returns a :class:`~repro.sim.process.Signal` that
fires with the reply (or with an exception object; see
:func:`raise_if_error`).

Server side
-----------

An acceptor listens on the ORB port.  Incoming requests are decoded,
their propagated RT-CORBA priority extracted from the service context,
and a work item queued on the target POA's thread pool lane.  The
worker thread assumes the mapped native priority (CLIENT_PROPAGATED)
or the POA's declared priority (SERVER_DECLARED), pays the
demarshal/dispatch CPU cost, runs the servant, and sends the reply.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional, Tuple

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.process import Process, Signal
from repro.oskernel.host import Host
from repro.oskernel.thread import SimThread
from repro.net.diffserv import Dscp
from repro.net.topology import Network
from repro.net.transport import MessageMeta, StreamConnection, StreamListener
from repro.orb.cdr import OpaquePayload
from repro.orb.giop import GiopMessage, MsgType, ReplyStatus
from repro.orb.ior import ObjectReference, PriorityModelValue
from repro.orb.rt import PriorityMappingManager, ThreadPool

_request_ids = itertools.count(1)


class OrbError(RuntimeError):
    """A CORBA-ish system exception surfaced to the caller."""


class RequestTimeout(OrbError):
    """The relative round-trip timeout expired before the reply."""


class ConnectionClosed(OrbError):
    """The transport under a pending request died (COMM_FAILURE)."""


def raise_if_error(value: Any) -> Any:
    """Raise ``value`` if the reply signal delivered an exception."""
    if isinstance(value, BaseException):
        raise value
    return value


class _PendingRequest:
    __slots__ = ("signal", "timeout_event", "sent_at", "connection")

    def __init__(self, signal: Signal, sent_at: float) -> None:
        self.signal = signal
        self.timeout_event: Optional[ScheduledEvent] = None
        self.sent_at = sent_at
        # The transport the request went out on; None until transmit
        # (marshaling may still be in progress).  Lets the ORB fail
        # the request if that connection dies — without it, a request
        # with no timeout would wait forever on a closed connection.
        self.connection: Optional[StreamConnection] = None


class Orb:
    """One ORB instance bound to one simulated host.

    Parameters
    ----------
    kernel, host, network:
        The substrate to run on.  The host must already be attached to
        the network.
    port:
        The acceptor port (default 2809, the IIOP registered port).
    cpu_cost_base / cpu_cost_per_kb:
        CPU seconds charged per (de)marshal operation: a fixed cost
        plus a size-proportional term.  Calibrated so a 5 kB request
        costs ~0.25 ms on the reference 1 GHz machine — in the range
        the paper's testbed exhibits (1.5 ms end-to-end incl. network).
    """

    def __init__(
        self,
        kernel: Kernel,
        host: Host,
        network: Network,
        port: int = 2809,
        cpu_cost_base: float = 50e-6,
        cpu_cost_per_kb: float = 40e-6,
    ) -> None:
        self.kernel = kernel
        self.host = host
        self.network = network
        self.port = int(port)
        self.cpu_cost_base = float(cpu_cost_base)
        self.cpu_cost_per_kb = float(cpu_cost_per_kb)
        self.mapping_manager = PriorityMappingManager()
        #: When True, requests carrying a CORBA priority are marked
        #: with the DSCP derived from it (the paper's RT-CORBA/DiffServ
        #: integration).  Off by default: the control experiments run
        #: unmarked.
        self.map_priority_to_dscp = False
        #: RT-CORBA PriorityBandedConnection policy: when set (sorted
        #: band floors, e.g. ``[0, 10000, 20000]``), requests in
        #: different bands use *separate* connections, so low-priority
        #: bulk traffic cannot head-of-line-block urgent requests on a
        #: shared socket.  ``None`` (default) = one connection per
        #: (endpoint, DSCP).
        self.priority_bands = None
        self.nic = network.nic_of(host.name)
        self._listener = StreamListener(
            kernel, self.nic, self.port, on_connection=self._accept
        )
        self._connections: Dict[Tuple[str, int, Dscp], StreamConnection] = {}
        self._pending: Dict[int, _PendingRequest] = {}
        self._poas: Dict[str, Any] = {}
        self._default_pool: Optional[ThreadPool] = None
        #: RTCurrent analogue: the worker SimThread currently executing
        #: a servant body (valid only during servant code; see
        #: :meth:`repro.orb.poa.Servant.compute`).
        self.current_dispatch_thread: Optional[SimThread] = None
        # Stats
        self.requests_sent = 0
        self.replies_received = 0
        self.requests_dispatched = 0
        #: Pending requests failed because their transport died.
        self.connection_failures = 0
        #: Invocation attempts re-issued by a RetryPolicy.
        self.requests_retried = 0

    # ------------------------------------------------------------------
    # POA management
    # ------------------------------------------------------------------
    def create_poa(self, name: str, **kwargs) -> "Poa":
        from repro.orb.poa import Poa  # deferred: cycle

        if name in self._poas:
            raise OrbError(f"POA {name!r} already exists")
        poa = Poa(self, name, **kwargs)
        self._poas[name] = poa
        return poa

    def poa(self, name: str) -> "Poa":
        return self._poas[name]

    def default_thread_pool(self) -> ThreadPool:
        """Lazy singleton pool used by POAs created without one."""
        if self._default_pool is None:
            self._default_pool = ThreadPool(
                self.kernel,
                self.host,
                self.mapping_manager,
                lanes=[(0, 2)],
                name="default-pool",
            )
        return self._default_pool

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def marshal_cost(self, nbytes: int) -> float:
        return self.cpu_cost_base + (nbytes / 1024.0) * self.cpu_cost_per_kb

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def invoke(
        self,
        objref: ObjectReference,
        operation: str,
        body: bytes,
        opaques: Optional[list] = None,
        thread: Optional[SimThread] = None,
        priority: Optional[int] = None,
        dscp: Optional[Dscp] = None,
        response_expected: bool = True,
        timeout: Optional[float] = None,
        retry: Optional["RetryPolicy"] = None,
    ) -> Signal:
        """Send a request; returns a signal fired with the reply message
        (or an exception object for timeouts/system errors).

        With a :class:`~repro.orb.retry.RetryPolicy`, transient
        transport failures (timeouts, dead connections) are retried
        with exponential backoff inside the policy's overall deadline
        budget; the returned signal fires once, with the first
        success or the final error.
        """
        if retry is not None and response_expected:
            return self._invoke_with_retry(
                objref, operation, body, opaques, thread, priority,
                dscp, timeout, retry,
            )
        request_id = next(_request_ids)
        # Honor the target's priority model (embedded in its IOR).
        send_priority = priority
        if objref.priority_model() == PriorityModelValue.SERVER_DECLARED:
            send_priority = None  # server ignores client priorities
        message = GiopMessage.request(
            request_id,
            objref.object_key,
            operation,
            body,
            opaques=opaques,
            response_expected=response_expected,
            priority=send_priority,
        )
        effective_dscp = self._effective_dscp(objref, priority, dscp)
        done = Signal(self.kernel, name=f"reply-{request_id}")
        pending: Optional[_PendingRequest] = None
        if response_expected:
            pending = _PendingRequest(done, sent_at=self.kernel.now)
            self._pending[request_id] = pending
            if timeout is not None:
                pending.timeout_event = self.kernel.schedule(
                    timeout, self._timeout, request_id
                )
        encoded, sidecar = message.encode()
        wire_bytes = len(encoded) + sum(o.nbytes for o in sidecar)
        band = self._band_of(priority)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.begin(
                "orb", "request", span=f"req:{request_id}",
                request=request_id, operation=operation,
                key=objref.object_key, priority=send_priority,
                dscp=effective_dscp.name, bytes=wire_bytes,
                oneway=not response_expected, client=self.host.name,
            )
            if thread is not None:
                tracer.begin(
                    "orb", "marshal", span=f"marshal:{request_id}",
                    request=request_id, thread=thread.name,
                )

        def transmit() -> None:
            tr = self.kernel.tracer
            if tr is not None:
                if thread is not None:
                    tr.end("orb", "marshal", span=f"marshal:{request_id}",
                           request=request_id)
                tr.begin("orb", "transfer", span=f"xfer:{request_id}",
                         request=request_id, dscp=effective_dscp.name,
                         bytes=wire_bytes)
            connection = self._connection_to(
                objref.host, objref.port, effective_dscp, band
            )
            if pending is not None:
                pending.connection = connection
            connection.send_message((encoded, sidecar), wire_bytes)
            self.requests_sent += 1
            if not response_expected:
                # Ack on the next tick so a caller that yields the
                # signal right after invoke() cannot miss the fire.
                self.kernel.schedule(0.0, done.fire, None)

        if thread is not None:
            work = self.host.cpu.submit(thread, self.marshal_cost(wire_bytes))
            work.done.wait(lambda _request: transmit())
        else:
            transmit()
        return done

    def _invoke_with_retry(
        self,
        objref: ObjectReference,
        operation: str,
        body: bytes,
        opaques: Optional[list],
        thread: Optional[SimThread],
        priority: Optional[int],
        dscp: Optional[Dscp],
        timeout: Optional[float],
        retry: "RetryPolicy",
    ) -> Signal:
        done = Signal(self.kernel, name=f"retry-{operation}")
        deadline = (None if retry.deadline is None
                    else self.kernel.now + retry.deadline)
        per_try = timeout if timeout is not None else retry.per_try_timeout
        attempts = [0]

        def launch() -> None:
            attempts[0] += 1
            try_timeout = per_try
            if deadline is not None:
                remaining = deadline - self.kernel.now
                if remaining <= 0:
                    done.fire(RequestTimeout(
                        f"{operation}: retry deadline exhausted after "
                        f"{attempts[0] - 1} attempts"))
                    return
                try_timeout = (remaining if try_timeout is None
                               else min(try_timeout, remaining))
            inner = self.invoke(
                objref, operation, body, opaques=opaques, thread=thread,
                priority=priority, dscp=dscp, response_expected=True,
                timeout=try_timeout,
            )
            inner.wait(settle)

        def settle(value: Any) -> None:
            if not isinstance(value, retry.retry_on):
                done.fire(value)
                return
            if attempts[0] >= retry.max_attempts:
                done.fire(value)
                return
            delay = retry.backoff_after(attempts[0])
            if deadline is not None \
                    and self.kernel.now + delay >= deadline:
                done.fire(value)
                return
            self.requests_retried += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant(
                    "orb", "request.retry", operation=operation,
                    attempt=attempts[0], backoff=delay,
                    error=type(value).__name__,
                )
            self.kernel.schedule(delay, launch)

        launch()
        return done

    def _effective_dscp(
        self,
        objref: ObjectReference,
        priority: Optional[int],
        dscp: Optional[Dscp],
    ) -> Dscp:
        if dscp is not None:
            return dscp
        from_ior = objref.protocol_dscp()
        if from_ior is not None:
            return from_ior
        if self.map_priority_to_dscp and priority is not None:
            return self.mapping_manager.to_dscp(priority)
        return Dscp.BE

    def transport_depth(
        self,
        objref: ObjectReference,
        priority: Optional[int] = None,
        dscp: Optional[Dscp] = None,
    ) -> int:
        """Send-queue depth of the connection a request would use.

        Zero when no connection exists yet.  Lets rate-based callers
        (video senders) skip work the transport cannot keep up with.
        """
        effective = self._effective_dscp(objref, priority, dscp)
        key = (objref.host, objref.port, effective, self._band_of(priority))
        connection = self._connections.get(key)
        if connection is None or connection.closed:
            return 0
        return connection.send_depth

    def enable_priority_banded_connections(self, band_floors) -> None:
        """Install the PriorityBandedConnection policy.

        ``band_floors`` are the lower bounds of each band, ascending;
        the first must be 0 so every priority lands in some band.
        """
        floors = sorted(int(f) for f in band_floors)
        if not floors or floors[0] != 0:
            raise OrbError("band floors must start at 0")
        self.priority_bands = floors

    def _band_of(self, priority: Optional[int]) -> int:
        if self.priority_bands is None:
            return 0
        effective = 0 if priority is None else int(priority)
        band = self.priority_bands[0]
        for floor in self.priority_bands:
            if effective >= floor:
                band = floor
            else:
                break
        return band

    def _connection_to(
        self, host: str, port: int, dscp: Dscp, band: int = 0
    ) -> StreamConnection:
        key = (host, port, dscp, band)
        connection = self._connections.get(key)
        if connection is None or connection.closed:
            connection = StreamConnection.connect(
                self.kernel,
                self.nic,
                host,
                port,
                dscp=dscp,
                on_message=self._on_client_message,
            )
            connection.on_close = self._on_connection_closed
            self._connections[key] = connection
        return connection

    def _on_connection_closed(self, connection: StreamConnection) -> None:
        """Fail every request pending on a dead transport.

        Covers the give-up path (``MAX_CONSECUTIVE_RTOS``) as well as
        explicit shutdown: requests without a timeout would otherwise
        hang forever, since no reply can ever arrive on this
        connection again.
        """
        stranded = [rid for rid, p in self._pending.items()
                    if p.connection is connection]
        tracer = self.kernel.tracer
        for request_id in stranded:
            pending = self._pending.pop(request_id)
            if pending.timeout_event is not None:
                pending.timeout_event.cancel()
            self.connection_failures += 1
            if tracer is not None:
                tracer.end("orb", "request", span=f"req:{request_id}",
                           request=request_id, status="COMM_FAILURE")
            pending.signal.fire(ConnectionClosed(
                f"request {request_id}: connection to "
                f"{connection.remote_host}:{connection.remote_port} closed"
            ))

    def _on_client_message(self, payload: Any, meta: MessageMeta) -> None:
        encoded, sidecar = payload
        message = GiopMessage.decode(encoded, sidecar)
        if message.msg_type is not MsgType.REPLY:
            return
        pending = self._pending.pop(message.request_id, None)
        tracer = self.kernel.tracer
        if pending is None:
            if tracer is not None:
                tracer.instant("orb", "reply.late", request=message.request_id)
            return  # late reply after timeout
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        self.replies_received += 1
        if tracer is not None:
            rid = message.request_id
            tracer.end("orb", "reply.transfer", span=f"rxfer:{rid}",
                       request=rid)
            tracer.end("orb", "request", span=f"req:{rid}", request=rid,
                       status=message.reply_status.name)
        if message.reply_status == ReplyStatus.SYSTEM_EXCEPTION:
            pending.signal.fire(OrbError(_decode_error(message)))
        else:
            pending.signal.fire(message)

    def _timeout(self, request_id: int) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        elapsed = self.kernel.now - pending.sent_at
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.end("orb", "request", span=f"req:{request_id}",
                       request=request_id, status="TIMEOUT", elapsed=elapsed)
        pending.signal.fire(
            RequestTimeout(f"request {request_id} timed out after {elapsed:.3f}s")
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _accept(self, connection: StreamConnection) -> None:
        connection.on_message = (
            lambda payload, meta: self._on_server_message(connection, payload)
        )

    def _on_server_message(
        self, connection: StreamConnection, payload: Any
    ) -> None:
        encoded, sidecar = payload
        message = GiopMessage.decode(encoded, sidecar)
        if message.msg_type is not MsgType.REQUEST:
            return
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.end("orb", "transfer", span=f"xfer:{message.request_id}",
                       request=message.request_id, server=self.host.name,
                       priority=message.rt_priority())
        poa_name, _, _oid = message.object_key.partition("/")
        poa = self._poas.get(poa_name)
        if poa is None:
            self._system_exception(
                connection, message, f"no POA {poa_name!r}"
            )
            return
        poa.dispatch(connection, message)

    def send_reply(
        self,
        connection: StreamConnection,
        request_id: int,
        body: bytes,
        opaques: Optional[list] = None,
        reply_status: ReplyStatus = ReplyStatus.NO_EXCEPTION,
    ) -> None:
        message = GiopMessage.reply(
            request_id, body, opaques=opaques, reply_status=reply_status
        )
        encoded, sidecar = message.encode()
        wire_bytes = len(encoded) + sum(o.nbytes for o in sidecar)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.begin("orb", "reply.transfer", span=f"rxfer:{request_id}",
                         request=request_id, bytes=wire_bytes,
                         status=reply_status.name)
        connection.send_message((encoded, sidecar), wire_bytes)

    def _system_exception(
        self, connection: StreamConnection, request: GiopMessage, reason: str
    ) -> None:
        if not request.response_expected:
            return
        from repro.orb.cdr import CdrOutputStream

        out = CdrOutputStream()
        out.write_string(reason)
        self.send_reply(
            connection,
            request.request_id,
            out.getvalue(),
            reply_status=ReplyStatus.SYSTEM_EXCEPTION,
        )

    def shutdown(self) -> None:
        """Close the acceptor and all cached connections."""
        self._listener.close()
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Orb {self.host.name}:{self.port}>"


def _decode_error(message: GiopMessage) -> str:
    from repro.orb.cdr import CdrInputStream

    try:
        return CdrInputStream(message.body).read_string()
    except Exception:  # noqa: BLE001 - diagnostic path
        return "unknown system exception"
