"""Client-side invocation retry policy.

A :class:`RetryPolicy` makes ORB invocations resilient to *transient*
transport failures — request timeouts and connections torn down under
the request — without masking application errors: servant-raised
system exceptions are never retried.  Pass one to
:meth:`repro.orb.core.Orb.invoke`.

The policy is three-knobbed, after the pattern of production ORBs and
RPC stacks: a cap on total attempts, exponential backoff between
attempts, and an overall deadline budget that bounds worst-case
latency regardless of how the attempts interleave.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.orb.core import ConnectionClosed, RequestTimeout

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """How a client invocation retries transient failures.

    Parameters
    ----------
    max_attempts:
        Total attempts, first try included (so ``1`` disables retry).
    initial_backoff / multiplier / max_backoff:
        The pause before attempt *n+1* is
        ``min(max_backoff, initial_backoff * multiplier ** (n - 1))``.
    deadline:
        Overall budget in seconds, measured from the first attempt.
        No attempt is launched (and no backoff slept) past it; the
        per-attempt timeout is clipped to the remaining budget.
        ``None`` means attempts-bounded only.
    per_try_timeout:
        Round-trip timeout applied to each attempt when the caller
        did not pass an explicit ``timeout`` to ``invoke``.  Without
        either, only a dead connection (never a silent loss) can
        trigger a retry.
    retry_on:
        Exception types considered transient.
    """

    __slots__ = ("max_attempts", "initial_backoff", "multiplier",
                 "max_backoff", "deadline", "per_try_timeout", "retry_on")

    def __init__(
        self,
        max_attempts: int = 3,
        initial_backoff: float = 0.1,
        multiplier: float = 2.0,
        max_backoff: float = 2.0,
        deadline: Optional[float] = None,
        per_try_timeout: Optional[float] = None,
        retry_on: Tuple[Type[BaseException], ...] = (
            RequestTimeout, ConnectionClosed),
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if initial_backoff < 0 or max_backoff < 0:
            raise ValueError("backoff must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        self.max_attempts = int(max_attempts)
        self.initial_backoff = float(initial_backoff)
        self.multiplier = float(multiplier)
        self.max_backoff = float(max_backoff)
        self.deadline = None if deadline is None else float(deadline)
        self.per_try_timeout = (
            None if per_try_timeout is None else float(per_try_timeout))
        self.retry_on = tuple(retry_on)

    def backoff_after(self, attempt: int) -> float:
        """Seconds to pause after failed attempt number ``attempt``."""
        return min(self.max_backoff,
                   self.initial_backoff * self.multiplier ** (attempt - 1))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"initial_backoff={self.initial_backoff}, "
                f"deadline={self.deadline})")
