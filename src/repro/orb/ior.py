"""Interoperable object references.

An :class:`ObjectReference` names a remote object: endpoint (host,
port), object key within its POA, and a list of tagged components.
Two components matter for the paper:

* the **priority model** component, embedded by a QoS-enabled object
  adapter so "clients who invoke operations on such object references
  honor the policies required by the target object" (section 3.1);
* **protocol properties**, carrying the server-requested DSCP
  (section 3.2's extension of ORB protocol properties).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.net.diffserv import Dscp


class ComponentTag(enum.IntEnum):
    """Tagged component ids (subset; values mirror common OMG tags)."""

    PRIORITY_MODEL = 0x29
    PROTOCOL_PROPERTIES = 0x2A


class PriorityModelValue(enum.IntEnum):
    CLIENT_PROPAGATED = 0
    SERVER_DECLARED = 1


class TaggedComponent:
    """One (tag, data) component in an IOR profile."""

    __slots__ = ("tag", "data")

    def __init__(self, tag: int, data: Dict) -> None:
        self.tag = int(tag)
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover
        return f"TaggedComponent(0x{self.tag:x}, {self.data!r})"


class ObjectReference:
    """A portable reference to one servant.

    Instances are created by :meth:`repro.orb.poa.Poa.activate_object`
    (server side) and can be passed to any client ORB on any host.
    """

    def __init__(
        self,
        type_id: str,
        host: str,
        port: int,
        object_key: str,
        components: Optional[List[TaggedComponent]] = None,
    ) -> None:
        self.type_id = type_id
        self.host = host
        self.port = int(port)
        self.object_key = object_key
        self.components = components or []

    # ------------------------------------------------------------------
    # Component helpers
    # ------------------------------------------------------------------
    def find_component(self, tag: int) -> Optional[TaggedComponent]:
        for component in self.components:
            if component.tag == tag:
                return component
        return None

    def priority_model(self) -> PriorityModelValue:
        """The server's declared priority model (default CLIENT_PROPAGATED)."""
        component = self.find_component(ComponentTag.PRIORITY_MODEL)
        if component is None:
            return PriorityModelValue.CLIENT_PROPAGATED
        return PriorityModelValue(component.data["model"])

    def server_priority(self) -> Optional[int]:
        """CORBA priority for SERVER_DECLARED objects, else None."""
        component = self.find_component(ComponentTag.PRIORITY_MODEL)
        if component is None:
            return None
        return component.data.get("priority")

    def protocol_dscp(self) -> Optional[Dscp]:
        """Server-requested DSCP from protocol properties, if any."""
        component = self.find_component(ComponentTag.PROTOCOL_PROPERTIES)
        if component is None:
            return None
        value = component.data.get("dscp")
        return None if value is None else Dscp(value)

    # ------------------------------------------------------------------
    def corbaloc(self) -> str:
        """Human-readable locator string."""
        return f"corbaloc:sim:{self.host}:{self.port}/{self.object_key}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ObjectReference {self.type_id} {self.corbaloc()}>"
