"""Common Data Representation (CDR) marshaling.

Byte-exact big-endian encoding with CORBA alignment rules: every
primitive is aligned to its natural size relative to the start of the
stream.  This is the real thing, not a simulation — GIOP messages in
this ORB are genuine byte strings, and message sizes on the simulated
wire are the sizes these encoders produce.

One extension beyond standard CDR: :class:`OpaquePayload`, a payload
that carries an arbitrary Python object plus a declared wire size.  It
models application data whose content is irrelevant to the experiments
(video frame pixels) without spending host RAM on fake bytes; the
declared size is what the simulated network charges for.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional

# Encoded-string memo: operation names, object keys and type ids are
# drawn from a small fixed vocabulary but marshaled on every request,
# so the UTF-8 encode + NUL append is cached.  Bounded so adversarial
# or unbounded string sets (e.g. per-frame payload text) cannot grow
# the cache without limit.
_STRING_MEMO: Dict[str, bytes] = {}
_STRING_MEMO_MAX = 4096


class CdrError(ValueError):
    """Raised on malformed CDR data or unsupported types."""


class OpaquePayload:
    """An application object with a declared marshaled size.

    >>> frame = OpaquePayload({"frame": 1}, nbytes=12_000)
    >>> frame.nbytes
    12000
    """

    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any, nbytes: int) -> None:
        if nbytes < 0:
            raise CdrError(f"negative opaque size: {nbytes}")
        self.value = value
        self.nbytes = int(nbytes)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, OpaquePayload)
            and other.value == self.value
            and other.nbytes == self.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpaquePayload({self.value!r}, nbytes={self.nbytes})"


class CdrOutputStream:
    """Encoder with CORBA alignment semantics."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._length = 0
        # Opaque payload sidecar: (offset index, payload).
        self._opaques: List[OpaquePayload] = []

    # -- plumbing --------------------------------------------------------
    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def align(self, boundary: int) -> None:
        remainder = self._length % boundary
        if remainder:
            self._append(b"\x00" * (boundary - remainder))

    @property
    def length(self) -> int:
        """Bytes written so far, including opaque payload weight."""
        return self._length + sum(o.nbytes for o in self._opaques)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    @property
    def opaques(self) -> List[OpaquePayload]:
        return list(self._opaques)

    # -- primitives ------------------------------------------------------
    def write_octet(self, value: int) -> None:
        self._append(struct.pack(">B", value & 0xFF))

    def write_boolean(self, value: bool) -> None:
        self.write_octet(1 if value else 0)

    def write_short(self, value: int) -> None:
        self.align(2)
        self._append(struct.pack(">h", value))

    def write_ushort(self, value: int) -> None:
        self.align(2)
        self._append(struct.pack(">H", value))

    def write_long(self, value: int) -> None:
        self.align(4)
        self._append(struct.pack(">i", value))

    def write_ulong(self, value: int) -> None:
        self.align(4)
        self._append(struct.pack(">I", value))

    def write_longlong(self, value: int) -> None:
        self.align(8)
        self._append(struct.pack(">q", value))

    def write_float(self, value: float) -> None:
        self.align(4)
        self._append(struct.pack(">f", value))

    def write_double(self, value: float) -> None:
        self.align(8)
        self._append(struct.pack(">d", value))

    def write_string(self, value: str) -> None:
        encoded = _STRING_MEMO.get(value)
        if encoded is None:
            encoded = value.encode("utf-8") + b"\x00"
            if len(_STRING_MEMO) < _STRING_MEMO_MAX:
                _STRING_MEMO[value] = encoded
        self.write_ulong(len(encoded))
        self._append(encoded)

    def write_octets(self, value: bytes) -> None:
        """Sequence<octet>: length-prefixed raw bytes."""
        self.write_ulong(len(value))
        self._append(value)

    def write_opaque(self, payload: OpaquePayload) -> None:
        """Write an opaque payload: the object rides a sidecar, only a
        marker and the declared size hit the byte stream."""
        self.write_ulong(payload.nbytes)
        self.write_ulong(len(self._opaques))
        self._opaques.append(payload)


class CdrInputStream:
    """Decoder matching :class:`CdrOutputStream`."""

    def __init__(self, data: bytes, opaques: Optional[List[OpaquePayload]] = None) -> None:
        self._data = data
        self._offset = 0
        self._opaques = opaques or []

    # -- plumbing --------------------------------------------------------
    def align(self, boundary: int) -> None:
        remainder = self._offset % boundary
        if remainder:
            self._offset += boundary - remainder

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise CdrError(
                f"truncated CDR stream: need {count} bytes at offset "
                f"{self._offset}, have {len(self._data)}"
            )
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    # -- primitives ------------------------------------------------------
    def read_octet(self) -> int:
        return struct.unpack(">B", self._take(1))[0]

    def read_boolean(self) -> bool:
        return self.read_octet() != 0

    def read_short(self) -> int:
        self.align(2)
        return struct.unpack(">h", self._take(2))[0]

    def read_ushort(self) -> int:
        self.align(2)
        return struct.unpack(">H", self._take(2))[0]

    def read_long(self) -> int:
        self.align(4)
        return struct.unpack(">i", self._take(4))[0]

    def read_ulong(self) -> int:
        self.align(4)
        return struct.unpack(">I", self._take(4))[0]

    def read_longlong(self) -> int:
        self.align(8)
        return struct.unpack(">q", self._take(8))[0]

    def read_float(self) -> float:
        self.align(4)
        return struct.unpack(">f", self._take(4))[0]

    def read_double(self) -> float:
        self.align(8)
        return struct.unpack(">d", self._take(8))[0]

    def read_string(self) -> str:
        length = self.read_ulong()
        raw = self._take(length)
        if not raw.endswith(b"\x00"):
            raise CdrError("string not NUL-terminated")
        return raw[:-1].decode("utf-8")

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        return self._take(length)

    def read_opaque(self) -> OpaquePayload:
        nbytes = self.read_ulong()
        index = self.read_ulong()
        if index >= len(self._opaques):
            raise CdrError(f"opaque sidecar index {index} out of range")
        payload = self._opaques[index]
        if payload.nbytes != nbytes:
            raise CdrError("opaque size mismatch")
        return payload


# ----------------------------------------------------------------------
# Type-directed codecs used by the IDL compiler
# ----------------------------------------------------------------------
_WRITERS: dict = {
    "void": lambda out, v: None,
    "boolean": CdrOutputStream.write_boolean,
    "octet": CdrOutputStream.write_octet,
    "short": CdrOutputStream.write_short,
    "unsigned short": CdrOutputStream.write_ushort,
    "long": CdrOutputStream.write_long,
    "unsigned long": CdrOutputStream.write_ulong,
    "long long": CdrOutputStream.write_longlong,
    "float": CdrOutputStream.write_float,
    "double": CdrOutputStream.write_double,
    "string": CdrOutputStream.write_string,
    "opaque": CdrOutputStream.write_opaque,
}

_READERS: dict = {
    "void": lambda inp: None,
    "boolean": CdrInputStream.read_boolean,
    "octet": CdrInputStream.read_octet,
    "short": CdrInputStream.read_short,
    "unsigned short": CdrInputStream.read_ushort,
    "long": CdrInputStream.read_long,
    "unsigned long": CdrInputStream.read_ulong,
    "long long": CdrInputStream.read_longlong,
    "float": CdrInputStream.read_float,
    "double": CdrInputStream.read_double,
    "string": CdrInputStream.read_string,
    "opaque": CdrInputStream.read_opaque,
}


def writer_for(idl_type: str) -> Callable[[CdrOutputStream, Any], None]:
    """Return the encoder function for a (possibly sequence) IDL type."""
    if idl_type.startswith("sequence<") and idl_type.endswith(">"):
        inner = writer_for(idl_type[len("sequence<"):-1].strip())

        def write_sequence(out: CdrOutputStream, value: Any) -> None:
            out.write_ulong(len(value))
            for item in value:
                inner(out, item)

        return write_sequence
    try:
        return _WRITERS[idl_type]
    except KeyError:
        raise CdrError(f"unsupported IDL type: {idl_type!r}") from None


def reader_for(idl_type: str) -> Callable[[CdrInputStream], Any]:
    """Return the decoder function for a (possibly sequence) IDL type."""
    if idl_type.startswith("sequence<") and idl_type.endswith(">"):
        inner = reader_for(idl_type[len("sequence<"):-1].strip())

        def read_sequence(inp: CdrInputStream) -> list:
            return [inner(inp) for _ in range(inp.read_ulong())]

        return read_sequence
    try:
        return _READERS[idl_type]
    except KeyError:
        raise CdrError(f"unsupported IDL type: {idl_type!r}") from None
