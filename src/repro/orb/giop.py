"""GIOP message framing.

Requests and replies are encoded as real byte strings: a 12-byte GIOP
header (magic, version, message type, body length) followed by a
CDR-encoded header and body.  Service contexts ride in the request
header; the one that matters for this paper is ``RTCorbaPriority``,
which carries the CORBA priority end-to-end so each hop can map it to
native thread priorities and DSCPs (Fig 2).
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Any, List, Optional, Tuple

from repro.orb.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    OpaquePayload,
)

MAGIC = b"GIOP"
VERSION = (1, 2)

#: OMG-assigned service context id for RT-CORBA priority propagation.
SERVICE_ID_RT_CORBA_PRIORITY = 0x10


class MsgType(enum.IntEnum):
    REQUEST = 0
    REPLY = 1


class ReplyStatus(enum.IntEnum):
    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    LOCATION_FORWARD = 3


@lru_cache(maxsize=1024)
def _rt_priority_bytes(priority: int) -> bytes:
    """CDR encoding of one RTCorbaPriority value.

    Every prioritized request carries this context; the priority
    vocabulary per run is tiny, so the two-byte encoding is memoized.
    """
    out = CdrOutputStream()
    out.write_short(priority)
    return out.getvalue()


@lru_cache(maxsize=8)
def _header_prelude(msg_type: int) -> bytes:
    """The constant first 8 GIOP header bytes for one message type."""
    out = CdrOutputStream()
    for byte in MAGIC:
        out.write_octet(byte)
    out.write_octet(VERSION[0])
    out.write_octet(VERSION[1])
    out.write_octet(0)  # flags: big-endian
    out.write_octet(msg_type)
    return out.getvalue()


class ServiceContext:
    """One (id, data) service context entry."""

    __slots__ = ("context_id", "data")

    def __init__(self, context_id: int, data: bytes) -> None:
        self.context_id = int(context_id)
        self.data = data

    @classmethod
    def rt_priority(cls, priority: int) -> "ServiceContext":
        """Build the RTCorbaPriority context for a CORBA priority."""
        return cls(SERVICE_ID_RT_CORBA_PRIORITY,
                   _rt_priority_bytes(priority))

    def read_rt_priority(self) -> int:
        if self.context_id != SERVICE_ID_RT_CORBA_PRIORITY:
            raise CdrError("not an RTCorbaPriority context")
        return CdrInputStream(self.data).read_short()


class GiopMessage:
    """A decoded GIOP request or reply.

    Attributes are populated according to ``msg_type``; ``body`` is the
    raw CDR-encoded argument/result bytes and ``opaques`` the sidecar
    of :class:`~repro.orb.cdr.OpaquePayload` objects referenced by it.
    """

    def __init__(
        self,
        msg_type: MsgType,
        request_id: int,
        body: bytes = b"",
        opaques: Optional[List[OpaquePayload]] = None,
        # request fields
        object_key: str = "",
        operation: str = "",
        response_expected: bool = True,
        service_contexts: Optional[List[ServiceContext]] = None,
        # reply fields
        reply_status: ReplyStatus = ReplyStatus.NO_EXCEPTION,
    ) -> None:
        self.msg_type = msg_type
        self.request_id = int(request_id)
        self.body = body
        self.opaques = opaques or []
        self.object_key = object_key
        self.operation = operation
        self.response_expected = response_expected
        self.service_contexts = service_contexts or []
        self.reply_status = reply_status

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def find_context(self, context_id: int) -> Optional[ServiceContext]:
        for context in self.service_contexts:
            if context.context_id == context_id:
                return context
        return None

    def rt_priority(self) -> Optional[int]:
        """Extract the propagated CORBA priority, if present."""
        context = self.find_context(SERVICE_ID_RT_CORBA_PRIORITY)
        return context.read_rt_priority() if context else None

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self) -> Tuple[bytes, List[OpaquePayload]]:
        """Serialize to (bytes, opaque sidecar)."""
        out = CdrOutputStream()
        # GIOP header: the first 8 bytes are constant per message type
        # (memoized — requests marshal one per video frame).
        out._append(_header_prelude(int(self.msg_type)))
        out.write_ulong(0)  # body length placeholder (unused: framed transport)
        # Message header
        out.write_ulong(self.request_id)
        if self.msg_type is MsgType.REQUEST:
            out.write_boolean(self.response_expected)
            out.write_string(self.object_key)
            out.write_string(self.operation)
            out.write_ulong(len(self.service_contexts))
            for context in self.service_contexts:
                out.write_ulong(context.context_id)
                out.write_octets(context.data)
        else:
            out.write_ulong(int(self.reply_status))
        # Body
        out.write_octets(self.body)
        out.write_ulong(len(self.opaques))
        return out.getvalue(), list(self.opaques)

    @property
    def wire_size(self) -> int:
        """Total simulated bytes on the wire (header+body+opaques)."""
        encoded, opaques = self.encode()
        return len(encoded) + sum(o.nbytes for o in opaques)

    @classmethod
    def decode(
        cls, data: bytes, opaques: Optional[List[OpaquePayload]] = None
    ) -> "GiopMessage":
        """Parse bytes produced by :meth:`encode`."""
        inp = CdrInputStream(data)
        magic = bytes(inp.read_octet() for _ in range(4))
        if magic != MAGIC:
            raise CdrError(f"bad GIOP magic: {magic!r}")
        major, minor = inp.read_octet(), inp.read_octet()
        if (major, minor) != VERSION:
            raise CdrError(f"unsupported GIOP version {major}.{minor}")
        inp.read_octet()  # flags
        msg_type = MsgType(inp.read_octet())
        inp.read_ulong()  # body length placeholder
        request_id = inp.read_ulong()
        if msg_type is MsgType.REQUEST:
            response_expected = inp.read_boolean()
            object_key = inp.read_string()
            operation = inp.read_string()
            contexts = []
            for _ in range(inp.read_ulong()):
                context_id = inp.read_ulong()
                context_data = inp.read_octets()
                contexts.append(ServiceContext(context_id, context_data))
            body = inp.read_octets()
            opaque_count = inp.read_ulong()
            sidecar = list(opaques or [])
            if opaque_count != len(sidecar):
                raise CdrError(
                    f"opaque sidecar mismatch: header says {opaque_count}, "
                    f"got {len(sidecar)}"
                )
            return cls(
                msg_type,
                request_id,
                body=body,
                opaques=sidecar,
                object_key=object_key,
                operation=operation,
                response_expected=response_expected,
                service_contexts=contexts,
            )
        reply_status = ReplyStatus(inp.read_ulong())
        body = inp.read_octets()
        opaque_count = inp.read_ulong()
        sidecar = list(opaques or [])
        if opaque_count != len(sidecar):
            raise CdrError("opaque sidecar mismatch on reply")
        return cls(
            msg_type,
            request_id,
            body=body,
            opaques=sidecar,
            reply_status=reply_status,
        )

    @classmethod
    def request(
        cls,
        request_id: int,
        object_key: str,
        operation: str,
        body: bytes,
        opaques: Optional[List[OpaquePayload]] = None,
        response_expected: bool = True,
        priority: Optional[int] = None,
    ) -> "GiopMessage":
        contexts = []
        if priority is not None:
            contexts.append(ServiceContext.rt_priority(priority))
        return cls(
            MsgType.REQUEST,
            request_id,
            body=body,
            opaques=opaques,
            object_key=object_key,
            operation=operation,
            response_expected=response_expected,
            service_contexts=contexts,
        )

    @classmethod
    def reply(
        cls,
        request_id: int,
        body: bytes,
        opaques: Optional[List[OpaquePayload]] = None,
        reply_status: ReplyStatus = ReplyStatus.NO_EXCEPTION,
    ) -> "GiopMessage":
        return cls(
            MsgType.REPLY,
            request_id,
            body=body,
            opaques=opaques,
            reply_status=reply_status,
        )

    def __repr__(self) -> str:  # pragma: no cover
        if self.msg_type is MsgType.REQUEST:
            return (
                f"<GIOP Request {self.request_id} {self.object_key}."
                f"{self.operation}>"
            )
        return f"<GIOP Reply {self.request_id} {self.reply_status.name}>"
