"""A small IDL compiler.

Parses a subset of OMG IDL — modules, interfaces, operations with
``in`` parameters, ``oneway`` — and generates *stub* and *skeleton*
classes wired to the CDR codecs, mirroring what TAO's IDL compiler
produces (stubs marshal on the client, skeletons demarshal and
dispatch on the server).

Supported types: ``void boolean octet short unsigned short long
unsigned long long long float double string opaque`` and
``sequence<T>`` of any of those.  ``opaque`` is this ORB's extension
for application payloads with declared wire sizes (see
:class:`repro.orb.cdr.OpaquePayload`).

Example
-------
>>> interfaces = compile_idl('''
...     module Demo {
...         interface Echo {
...             string say(in string text);
...             oneway void push(in opaque frame);
...         };
...     };
... ''')
>>> sorted(interfaces)
['Demo::Echo']
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional

from repro.sim.process import Signal
from repro.orb.cdr import (
    CdrInputStream,
    CdrOutputStream,
    reader_for,
    writer_for,
)
from repro.orb.ior import ObjectReference
from repro.orb.poa import Servant


class IdlError(ValueError):
    """Raised on IDL the compiler cannot parse or support."""


class OperationDef:
    """Compiled signature of one IDL operation."""

    def __init__(
        self,
        name: str,
        result_type: str,
        param_names: List[str],
        param_types: List[str],
        oneway: bool,
    ) -> None:
        if oneway and result_type != "void":
            raise IdlError(f"oneway operation {name!r} must return void")
        self.name = name
        self.result_type = result_type
        self.param_names = param_names
        self.param_types = param_types
        self.oneway = oneway
        self.param_writers = [writer_for(t) for t in param_types]
        self.param_readers = [reader_for(t) for t in param_types]
        self.result_writer: Optional[Callable] = (
            None if result_type == "void" else writer_for(result_type)
        )
        self.result_reader: Optional[Callable] = (
            None if result_type == "void" else reader_for(result_type)
        )

    def __repr__(self) -> str:  # pragma: no cover
        mode = "oneway " if self.oneway else ""
        params = ", ".join(
            f"in {t} {n}" for t, n in zip(self.param_types, self.param_names)
        )
        return f"{mode}{self.result_type} {self.name}({params})"


class InterfaceDef:
    """A compiled interface: operation table plus generated classes."""

    def __init__(self, qualified_name: str, operations: Dict[str, OperationDef]):
        self.qualified_name = qualified_name
        self.operations = operations
        self.type_id = f"IDL:{qualified_name.replace('::', '/')}:1.0"
        self.stub_class = _make_stub_class(self)
        self.skeleton_class = _make_skeleton_class(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<InterfaceDef {self.qualified_name}>"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|[{}();,<>]")
_BASIC_TYPES = {
    "void", "boolean", "octet", "short", "long", "float", "double",
    "string", "opaque",
}


class _Tokens:
    def __init__(self, text: str) -> None:
        text = re.sub(r"//[^\n]*", "", text)
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
        self._tokens = _TOKEN_RE.findall(text)
        self._index = 0

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise IdlError("unexpected end of IDL")
        self._index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise IdlError(f"expected {token!r}, got {got!r}")

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_type(tokens: _Tokens) -> str:
    word = tokens.next()
    if word == "sequence":
        tokens.expect("<")
        inner = _parse_type(tokens)
        tokens.expect(">")
        return f"sequence<{inner}>"
    if word == "unsigned":
        second = tokens.next()
        if second not in ("short", "long"):
            raise IdlError(f"bad type 'unsigned {second}'")
        return f"unsigned {second}"
    if word == "long" and tokens.peek() == "long":
        tokens.next()
        return "long long"
    if word not in _BASIC_TYPES:
        raise IdlError(f"unsupported IDL type {word!r}")
    return word


def _parse_operation(tokens: _Tokens) -> OperationDef:
    oneway = False
    if tokens.peek() == "oneway":
        tokens.next()
        oneway = True
    result_type = _parse_type(tokens)
    name = tokens.next()
    tokens.expect("(")
    param_names: List[str] = []
    param_types: List[str] = []
    while tokens.peek() != ")":
        direction = tokens.next()
        if direction != "in":
            raise IdlError(
                f"only 'in' parameters are supported, got {direction!r}"
            )
        param_types.append(_parse_type(tokens))
        param_names.append(tokens.next())
        if tokens.peek() == ",":
            tokens.next()
    tokens.expect(")")
    tokens.expect(";")
    return OperationDef(name, result_type, param_names, param_types, oneway)


def _parse_interface(tokens: _Tokens, prefix: str) -> InterfaceDef:
    name = tokens.next()
    tokens.expect("{")
    operations: Dict[str, OperationDef] = {}
    while tokens.peek() != "}":
        operation = _parse_operation(tokens)
        if operation.name in operations:
            raise IdlError(f"duplicate operation {operation.name!r}")
        operations[operation.name] = operation
    tokens.expect("}")
    tokens.expect(";")
    qualified = f"{prefix}{name}"
    return InterfaceDef(qualified, operations)


def _parse_scope(
    tokens: _Tokens, prefix: str, result: Dict[str, InterfaceDef]
) -> None:
    while not tokens.exhausted and tokens.peek() != "}":
        keyword = tokens.next()
        if keyword == "module":
            name = tokens.next()
            tokens.expect("{")
            _parse_scope(tokens, f"{prefix}{name}::", result)
            tokens.expect("}")
            tokens.expect(";")
        elif keyword == "interface":
            interface = _parse_interface(tokens, prefix)
            if interface.qualified_name in result:
                raise IdlError(
                    f"duplicate interface {interface.qualified_name!r}"
                )
            result[interface.qualified_name] = interface
        else:
            raise IdlError(f"expected 'module' or 'interface', got {keyword!r}")


def compile_idl(text: str) -> Dict[str, InterfaceDef]:
    """Compile IDL source into a map of qualified name -> InterfaceDef."""
    tokens = _Tokens(text)
    result: Dict[str, InterfaceDef] = {}
    _parse_scope(tokens, "", result)
    if tokens.peek() == "}":
        raise IdlError("unbalanced '}'")
    if not result:
        raise IdlError("no interfaces found")
    return result


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
class StubBase:
    """Base for generated stubs: holds call-context QoS knobs.

    ``priority``, ``dscp`` and ``timeout`` are deliberately mutable:
    QuO delegates adapt in-band by adjusting them between calls.
    """

    _repro_interface: InterfaceDef = None  # set by subclass factory

    def __init__(
        self,
        orb,
        objref: ObjectReference,
        thread=None,
        priority: Optional[int] = None,
        dscp=None,
        timeout: Optional[float] = None,
    ) -> None:
        self._orb = orb
        self._objref = objref
        self.thread = thread
        self.priority = priority
        self.dscp = dscp
        self.timeout = timeout
        #: Per-stub call counter (observability).
        self.calls = 0

    def transport_depth(self) -> int:
        """Send-queue depth of this stub's connection (0 if none yet)."""
        return self._orb.transport_depth(
            self._objref, self.priority, self.dscp
        )

    def _invoke(self, operation: OperationDef, args: tuple) -> Signal:
        if len(args) != len(operation.param_writers):
            raise TypeError(
                f"{operation.name}() takes {len(operation.param_writers)} "
                f"arguments ({len(args)} given)"
            )
        out = CdrOutputStream()
        for writer, arg in zip(operation.param_writers, args):
            writer(out, arg)
        self.calls += 1
        reply = self._orb.invoke(
            self._objref,
            operation.name,
            out.getvalue(),
            opaques=out.opaques,
            thread=self.thread,
            priority=self.priority,
            dscp=self.dscp,
            response_expected=not operation.oneway,
            timeout=self.timeout,
        )
        result = Signal(self._orb.kernel, name=f"{operation.name}.result")

        def on_reply(value) -> None:
            if isinstance(value, BaseException) or value is None:
                result.fire(value)
                return
            if operation.result_reader is None:
                result.fire(None)
                return
            inp = CdrInputStream(value.body, value.opaques)
            result.fire(operation.result_reader(inp))

        reply.wait(on_reply)
        return result


def _make_stub_method(operation: OperationDef):
    def method(self, *args):
        return self._invoke(operation, args)

    method.__name__ = operation.name
    method.__doc__ = f"IDL operation: {operation!r}"
    return method


def _make_stub_class(interface: InterfaceDef):
    namespace = {"_repro_interface": interface, "__doc__": (
        f"Generated stub for {interface.qualified_name}."
    )}
    for operation in interface.operations.values():
        namespace[operation.name] = _make_stub_method(operation)
    class_name = interface.qualified_name.split("::")[-1] + "Stub"
    return type(class_name, (StubBase,), namespace)


def _make_skeleton_method(operation: OperationDef):
    def method(self, *args):
        raise NotImplementedError(
            f"servant must implement {operation.name!r}"
        )

    method.__name__ = operation.name
    method.__doc__ = f"IDL operation: {operation!r}"
    return method


def _make_skeleton_class(interface: InterfaceDef):
    namespace: Dict[str, Any] = {
        "_repro_operations": interface.operations,
        "_repro_type_id": interface.type_id,
        "_repro_interface": interface,
        "__doc__": f"Generated skeleton for {interface.qualified_name}.",
    }
    for operation in interface.operations.values():
        namespace[operation.name] = _make_skeleton_method(operation)
    class_name = interface.qualified_name.split("::")[-1] + "Skeleton"
    return type(class_name, (Servant,), namespace)
