"""A miniature CORBA-style ORB with Real-time CORBA extensions.

This is the distribution-middleware layer of the reproduction (the
TAO analogue).  Unlike the wire and the CPUs below it — which are
simulated — the middleware itself is *real*: requests are CDR-encoded
to bytes, framed as GIOP messages with service contexts, demultiplexed
through POAs, and dispatched on prioritized thread pools.

Subpackages
-----------

``cdr``
    Common Data Representation: byte-exact, aligned, big-endian
    marshaling of IDL basic and constructed types.

``giop``
    GIOP 1.2-style Request/Reply messages and service contexts,
    including the ``RTCorbaPriority`` context that propagates CORBA
    priorities end-to-end (paper Fig 2).

``ior``
    Object references with tagged components carrying RT policies and
    protocol properties.

``idl``
    A small IDL compiler producing stub and skeleton classes.

``poa``
    Portable Object Adapter with an active-demultiplexing object map.

``rt``
    Real-time CORBA: priority mappings (native and DiffServ),
    PriorityMappingManager, thread pools with lanes, priority-model
    policies.

``core``
    The ORB itself: acceptors, connection cache, request lifecycle.

``retry``
    Client-side retry policy: bounded attempts, exponential backoff,
    an overall deadline budget.
"""

from repro.orb.cdr import CdrError, CdrInputStream, CdrOutputStream, OpaquePayload
from repro.orb.core import ConnectionClosed, Orb, OrbError, RequestTimeout
from repro.orb.retry import RetryPolicy
from repro.orb.giop import (
    GiopMessage,
    ReplyStatus,
    SERVICE_ID_RT_CORBA_PRIORITY,
    ServiceContext,
)
from repro.orb.idl import IdlError, compile_idl
from repro.orb.ior import ObjectReference, TaggedComponent
from repro.orb.poa import Poa, PoaError, Servant
from repro.orb.rt import (
    DscpMapping,
    LinearPriorityMapping,
    PriorityBand,
    PriorityMappingManager,
    PriorityModel,
    ThreadPool,
    ThreadPoolLane,
)

__all__ = [
    "CdrError",
    "CdrInputStream",
    "CdrOutputStream",
    "ConnectionClosed",
    "DscpMapping",
    "GiopMessage",
    "IdlError",
    "LinearPriorityMapping",
    "ObjectReference",
    "OpaquePayload",
    "Orb",
    "OrbError",
    "Poa",
    "PoaError",
    "PriorityBand",
    "PriorityMappingManager",
    "PriorityModel",
    "ReplyStatus",
    "RequestTimeout",
    "RetryPolicy",
    "SERVICE_ID_RT_CORBA_PRIORITY",
    "Servant",
    "ServiceContext",
    "TaggedComponent",
    "ThreadPool",
    "ThreadPoolLane",
    "compile_idl",
]
