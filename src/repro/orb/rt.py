"""Real-time CORBA machinery.

Implements the RT-CORBA features the paper leans on (section 3.1):

* **CORBA priorities** (0..32767) and their mapping onto native OS
  priorities per host OS type — with a ``PriorityMappingManager`` that
  "supports installation of a custom mapping to override the default";
* the paper's extension: a second mapping from CORBA priorities to
  **DiffServ codepoints**, so one end-to-end priority drives both
  thread scheduling and network per-hop behaviour (Fig 2);
* **thread pools with lanes**: pre-created server threads at fixed
  priorities, with bounded request buffering.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.sim.kernel import Kernel
from repro.sim.process import Process, Signal
from repro.oskernel.host import Host
from repro.oskernel.priorities import OsType, clamp_native, native_priority_range
from repro.oskernel.thread import SimThread
from repro.net.diffserv import Dscp

#: The RT-CORBA priority range.
MIN_PRIORITY = 0
MAX_PRIORITY = 32767


class PriorityModel:
    """RT-CORBA priority-model policy values."""

    CLIENT_PROPAGATED = "client_propagated"
    SERVER_DECLARED = "server_declared"


# ----------------------------------------------------------------------
# CORBA -> native priority mappings
# ----------------------------------------------------------------------
class LinearPriorityMapping:
    """Default mapping: linear interpolation into the native range."""

    def to_native(self, corba_priority: int, os_type: OsType) -> int:
        corba_priority = max(MIN_PRIORITY, min(MAX_PRIORITY, int(corba_priority)))
        low, high = native_priority_range(os_type)
        span = high - low
        return low + round(corba_priority * span / MAX_PRIORITY)

    def to_corba(self, native_priority: int, os_type: OsType) -> int:
        low, high = native_priority_range(os_type)
        span = high - low
        if span == 0:
            return MIN_PRIORITY
        clamped = clamp_native(os_type, native_priority)
        return round((clamped - low) * MAX_PRIORITY / span)


class TablePriorityMapping:
    """Custom mapping from explicit (corba threshold -> native) bands.

    ``bands`` is a sequence of (min_corba_priority, native_priority)
    pairs; the highest threshold not exceeding the request priority
    wins.  This is how Figure 2's per-OS values (QNX 16, LynxOS 128,
    Solaris 136 for CORBA priority 100) are expressed.
    """

    def __init__(self, bands: Sequence[tuple]) -> None:
        if not bands:
            raise ValueError("at least one band is required")
        self.bands = sorted((int(c), int(n)) for c, n in bands)
        if self.bands[0][0] != MIN_PRIORITY:
            raise ValueError("first band must start at CORBA priority 0")

    def to_native(self, corba_priority: int, os_type: OsType) -> int:
        corba_priority = max(MIN_PRIORITY, min(MAX_PRIORITY, int(corba_priority)))
        native = self.bands[0][1]
        for threshold, value in self.bands:
            if corba_priority >= threshold:
                native = value
            else:
                break
        return clamp_native(os_type, native)

    def to_corba(self, native_priority: int, os_type: OsType) -> int:
        for threshold, value in self.bands:
            if clamp_native(os_type, native_priority) == value:
                return threshold
        return MIN_PRIORITY


# ----------------------------------------------------------------------
# CORBA -> DSCP mapping (the paper's extension)
# ----------------------------------------------------------------------
class PriorityBand:
    """One (min CORBA priority -> DSCP) network-mapping band."""

    __slots__ = ("min_priority", "dscp")

    def __init__(self, min_priority: int, dscp: Dscp) -> None:
        self.min_priority = int(min_priority)
        self.dscp = dscp

    def __repr__(self) -> str:  # pragma: no cover
        return f"PriorityBand({self.min_priority}, {self.dscp.name})"


class DscpMapping:
    """Maps CORBA priorities onto DiffServ codepoints.

    The default bands put ordinary traffic in best effort, mid
    priorities into Assured Forwarding classes, and the top of the
    range into Expedited Forwarding.
    """

    DEFAULT_BANDS = (
        PriorityBand(0, Dscp.BE),
        PriorityBand(8000, Dscp.AF11),
        PriorityBand(16000, Dscp.AF21),
        PriorityBand(24000, Dscp.AF41),
        PriorityBand(30000, Dscp.EF),
    )

    def __init__(self, bands: Optional[Sequence[PriorityBand]] = None) -> None:
        chosen = list(bands) if bands is not None else list(self.DEFAULT_BANDS)
        if not chosen:
            raise ValueError("at least one band is required")
        self.bands = sorted(chosen, key=lambda band: band.min_priority)
        if self.bands[0].min_priority != MIN_PRIORITY:
            raise ValueError("first band must start at CORBA priority 0")

    def to_dscp(self, corba_priority: int) -> Dscp:
        corba_priority = max(MIN_PRIORITY, min(MAX_PRIORITY, int(corba_priority)))
        result = self.bands[0].dscp
        for band in self.bands:
            if corba_priority >= band.min_priority:
                result = band.dscp
            else:
                break
        return result


class PriorityMappingManager:
    """Holds the active native and network priority mappings for an ORB.

    "The TAO ORB provides a priority-mapping manager that supports
    installation of a custom mapping to override the default mapping."
    """

    def __init__(self) -> None:
        self._native = LinearPriorityMapping()
        self._dscp = DscpMapping()

    # -- installation ------------------------------------------------------
    def install_native_mapping(self, mapping) -> None:
        if not hasattr(mapping, "to_native"):
            raise TypeError("mapping must provide to_native()")
        self._native = mapping

    def install_dscp_mapping(self, mapping: DscpMapping) -> None:
        if not hasattr(mapping, "to_dscp"):
            raise TypeError("mapping must provide to_dscp()")
        self._dscp = mapping

    # -- use ---------------------------------------------------------------
    def to_native(self, corba_priority: int, os_type: OsType) -> int:
        return self._native.to_native(corba_priority, os_type)

    def to_corba(self, native_priority: int, os_type: OsType) -> int:
        return self._native.to_corba(native_priority, os_type)

    def to_dscp(self, corba_priority: int) -> Dscp:
        return self._dscp.to_dscp(corba_priority)


# ----------------------------------------------------------------------
# Thread pools with lanes
# ----------------------------------------------------------------------
#: A work item: a callable receiving the worker SimThread and returning
#: a generator the worker drives to completion.
WorkItem = Callable[[SimThread], Generator]


class ThreadPoolLane:
    """One lane: a CORBA priority plus a set of pre-created threads."""

    def __init__(
        self,
        kernel: Kernel,
        host: Host,
        corba_priority: int,
        static_threads: int,
        native_priority: int,
        name: str,
        max_buffered_requests: int = 1000,
    ) -> None:
        if static_threads <= 0:
            raise ValueError("a lane needs at least one thread")
        self.kernel = kernel
        self.host = host
        self.corba_priority = int(corba_priority)
        self.native_priority = int(native_priority)
        self.name = name
        self.max_buffered_requests = int(max_buffered_requests)
        self._queue: List[WorkItem] = []
        self._work_available = Signal(kernel, name=f"{name}.work")
        self.threads: List[SimThread] = []
        self.requests_processed = 0
        self.requests_rejected = 0
        for index in range(static_threads):
            thread = host.spawn_thread(
                f"{name}.worker{index}", priority=native_priority
            )
            self.threads.append(thread)
            Process(kernel, self._worker(thread), name=f"{name}.worker{index}")

    def enqueue(self, item: WorkItem) -> bool:
        """Queue a work item; False if the buffer bound rejects it."""
        if len(self._queue) >= self.max_buffered_requests:
            self.requests_rejected += 1
            return False
        self._queue.append(item)
        self._work_available.fire()
        return True

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def _worker(self, thread: SimThread) -> Generator:
        while True:
            while not self._queue:
                yield self._work_available
            item = self._queue.pop(0)
            try:
                yield from item(thread)
            finally:
                # A misbehaving servant must not change the lane's
                # baseline priority for subsequent requests.
                thread.set_priority(self.native_priority)
                self.requests_processed += 1


class ThreadPool:
    """An RT-CORBA thread pool: one or more priority lanes.

    Lane selection follows the spec: a request is served by the lane
    with the highest priority not exceeding the request's priority,
    falling back to the lowest lane.
    """

    def __init__(
        self,
        kernel: Kernel,
        host: Host,
        mapping: PriorityMappingManager,
        lanes: Sequence[tuple],
        name: str = "pool",
        max_buffered_requests: int = 1000,
    ) -> None:
        """``lanes`` is a sequence of (corba_priority, static_threads)."""
        if not lanes:
            raise ValueError("a thread pool needs at least one lane")
        self.kernel = kernel
        self.host = host
        self.name = name
        self.lanes: List[ThreadPoolLane] = []
        for corba_priority, static_threads in lanes:
            native = mapping.to_native(corba_priority, host.os_type)
            self.lanes.append(
                ThreadPoolLane(
                    kernel,
                    host,
                    corba_priority,
                    static_threads,
                    native,
                    name=f"{host.name}.{name}.lane{corba_priority}",
                    max_buffered_requests=max_buffered_requests,
                )
            )
        self.lanes.sort(key=lambda lane: lane.corba_priority)

    def lane_for(self, corba_priority: int) -> ThreadPoolLane:
        chosen = self.lanes[0]
        for lane in self.lanes:
            if lane.corba_priority <= corba_priority:
                chosen = lane
            else:
                break
        return chosen

    def dispatch(self, corba_priority: int, item: WorkItem) -> bool:
        """Queue ``item`` on the lane serving ``corba_priority``."""
        return self.lane_for(corba_priority).enqueue(item)
