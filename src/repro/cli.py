"""Command-line experiment runner: ``python -m repro <experiment>``.

Runs any of the paper's experiments with configurable parameters and
prints the paper-style tables plus ASCII charts — the quickest way to
poke at a scenario without writing a script.

Examples::

    python -m repro fig4 --duration 20
    python -m repro fig6
    python -m repro table1 --duration 120 --load-start 30 --load-end 90
    python -m repro table2 --duration 60
    python -m repro fig7 --arm 5-partial-filtering
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.charts import ascii_cumulative, ascii_timeseries
from repro.experiments.priority_exp import (
    PriorityArm,
    all_arms as priority_arms,
    run_priority_experiment,
)
from repro.experiments.reservation_cpu_exp import (
    all_arms as cpu_arms,
    run_cpu_reservation_experiment,
)
from repro.experiments.reservation_net_exp import (
    all_arms as network_arms,
    run_network_reservation_experiment,
)
from repro.experiments.reporting import (
    render_latency_table,
    render_table1,
    render_table2,
)


def _cmd_priority(args: argparse.Namespace, arms: List[PriorityArm]) -> int:
    results = {}
    for arm in arms:
        print(f"running {arm.name} ({args.duration:.0f}s simulated) ...",
              file=sys.stderr)
        results[arm.name] = run_priority_experiment(
            arm, duration=args.duration, seed=args.seed)
    print(render_latency_table({
        name: {s: result.stats(s) for s in ("sender1", "sender2")}
        for name, result in results.items()
    }))
    if args.chart:
        for name, result in results.items():
            samples = list(zip(result.latency["sender1"].series.times,
                               result.latency["sender1"].series.values))
            print()
            print(ascii_timeseries(f"{name} / sender1 latency", samples))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure4a(),
                                PriorityArm.figure4b()])


def _cmd_fig5(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure5a(),
                                PriorityArm.figure5b()])


def _cmd_fig6(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure5b(),
                                PriorityArm.figure6()])


def _cmd_all_priority(args: argparse.Namespace) -> int:
    return _cmd_priority(args, priority_arms())


def _network_arm(name: Optional[str]):
    chosen = network_arms()
    if name is None:
        return chosen
    matches = [arm for arm in chosen if arm.name == name]
    if not matches:
        names = ", ".join(arm.name for arm in chosen)
        raise SystemExit(f"unknown arm {name!r}; choose from: {names}")
    return matches


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for arm in _network_arm(args.arm):
        print(f"running {arm.name} ...", file=sys.stderr)
        result = run_network_reservation_experiment(
            arm, duration=args.duration, load_start=args.load_start,
            load_end=args.load_end, seed=args.seed)
        rows.append((arm.name,
                     result.delivered_fraction_under_load(),
                     result.latency_under_load()))
    print(render_table1(rows))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    for arm in _network_arm(args.arm):
        print(f"running {arm.name} ...", file=sys.stderr)
        result = run_network_reservation_experiment(
            arm, duration=args.duration, load_start=args.load_start,
            load_end=args.load_end, seed=args.seed)
        rows = result.cumulative_counts(bin_width=args.duration / 30)
        print()
        print(ascii_cumulative(f"Fig 7 — {arm.name}", rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    stats = {}
    for arm in cpu_arms():
        print(f"running {arm.name} ...", file=sys.stderr)
        result = run_cpu_reservation_experiment(
            arm, duration=args.duration, seed=args.seed)
        stats[arm.name] = result.algorithm_stats
    print(render_table2(stats))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's experiments from the command line.",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="root random seed (default 1)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, help_text, duration):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=duration,
                       help=f"simulated seconds (default {duration:g})")
        p.set_defaults(func=func)
        return p

    for name, func, help_text in (
        ("fig4", _cmd_fig4, "control runs (idle vs congested)"),
        ("fig5", _cmd_fig5, "thread priorities alone"),
        ("fig6", _cmd_fig6, "thread priorities + DSCP"),
        ("priority-all", _cmd_all_priority, "all five section 5.1 arms"),
    ):
        p = add(name, func, help_text, 30.0)
        p.add_argument("--chart", action="store_true",
                       help="also draw ASCII latency charts")

    for name, func in (("table1", _cmd_table1), ("fig7", _cmd_fig7)):
        p = add(name, func, "network reservation experiment", 300.0)
        p.add_argument("--load-start", type=float, default=60.0)
        p.add_argument("--load-end", type=float, default=120.0)
        p.add_argument("--arm", default=None,
                       help="run a single arm (e.g. 5-partial-filtering)")

    add("table2", _cmd_table2, "CPU reservation experiment", 120.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
