"""Command-line experiment runner: ``python -m repro <experiment>``.

Runs any of the paper's experiments with configurable parameters and
prints the paper-style tables plus ASCII charts — the quickest way to
poke at a scenario without writing a script.

Independent simulation arms fan out across a process pool (``--jobs``)
and completed runs are served from the on-disk result cache; both are
wired through :mod:`repro.experiments.runner`, so results are
bit-identical at any worker count.

Examples::

    python -m repro fig4 --duration 20
    python -m repro --jobs 4 fig6
    python -m repro table1 --duration 120 --load-start 30 --load-end 90
    python -m repro table2 --duration 60
    python -m repro fig7 --arm 5-partial-filtering
    python -m repro faults --duration 60
    python -m repro route --routers 120 --topology wan
    python -m repro --jobs 4 bench
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.sim.eventq import (
    DEFAULT_SCHEDULER,
    SCHEDULER_BACKENDS,
    SCHEDULER_ENV,
)

from repro.experiments.charts import ascii_cumulative, ascii_timeseries
from repro.experiments.priority_exp import (
    PriorityArm,
    all_arms as priority_arms,
    run_priority_experiment,
)
from repro.experiments.reservation_net_exp import all_arms as network_arms
from repro.experiments.reservation_cpu_exp import all_arms as cpu_arms
from repro.experiments.reporting import (
    render_latency_table,
    render_table1,
    render_table2,
)
from repro.experiments.runner import ExperimentRunner, RunSpec
from repro.experiments.scenario_registry import (
    capacity_arm_params,
    cpu_arm_params,
    fault_arm_params,
    figure_specs,
    network_arm_params,
    priority_arm_params,
    pubsub_arm_params,
    route_arm_params,
    scale_arm_params,
)


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        jobs=args.jobs, cache=False if args.no_cache else None)


def _cmd_priority(args: argparse.Namespace, arms: List[PriorityArm]) -> int:
    print(f"running {', '.join(arm.name for arm in arms)} "
          f"({args.duration:.0f}s simulated) ...", file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("priority",
                {"arm": priority_arm_params(arm), "duration": args.duration},
                seed=args.seed)
        for arm in arms
    ])
    results = {arm.name: payload for arm, payload in zip(arms, payloads)}
    print(render_latency_table({
        name: {s: result.stats(s) for s in ("sender1", "sender2")}
        for name, result in results.items()
    }))
    if args.chart:
        for name, result in results.items():
            samples = list(zip(result.latency["sender1"].series.times,
                               result.latency["sender1"].series.values))
            print()
            print(ascii_timeseries(f"{name} / sender1 latency", samples))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure4a(),
                                PriorityArm.figure4b()])


def _cmd_fig5(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure5a(),
                                PriorityArm.figure5b()])


def _cmd_fig6(args: argparse.Namespace) -> int:
    return _cmd_priority(args, [PriorityArm.figure5b(),
                                PriorityArm.figure6()])


def _cmd_all_priority(args: argparse.Namespace) -> int:
    return _cmd_priority(args, priority_arms())


def _network_arm(name: Optional[str]):
    chosen = network_arms()
    if name is None:
        return chosen
    matches = [arm for arm in chosen if arm.name == name]
    if not matches:
        names = ", ".join(arm.name for arm in chosen)
        raise SystemExit(f"unknown arm {name!r}; choose from: {names}")
    return matches


def _network_specs(args: argparse.Namespace, arms) -> List[RunSpec]:
    return [
        RunSpec("reservation_net",
                {"arm": network_arm_params(arm), "duration": args.duration,
                 "load_start": args.load_start, "load_end": args.load_end},
                seed=args.seed)
        for arm in arms
    ]


def _cmd_table1(args: argparse.Namespace) -> int:
    arms = _network_arm(args.arm)
    print(f"running {', '.join(arm.name for arm in arms)} ...",
          file=sys.stderr)
    payloads = _runner(args).payloads(_network_specs(args, arms))
    rows = [
        (arm.name,
         result.delivered_fraction_under_load(),
         result.latency_under_load())
        for arm, result in zip(arms, payloads)
    ]
    print(render_table1(rows))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    arms = _network_arm(args.arm)
    print(f"running {', '.join(arm.name for arm in arms)} ...",
          file=sys.stderr)
    payloads = _runner(args).payloads(_network_specs(args, arms))
    for arm, result in zip(arms, payloads):
        rows = result.cumulative_counts(bin_width=args.duration / 30)
        print()
        print(ascii_cumulative(f"Fig 7 — {arm.name}", rows))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Fig 8: frame delivery under injected faults, both chaos arms."""
    from repro.experiments.fault_exp import FaultArm

    arms = [FaultArm("static", False), FaultArm("adaptive", True)]
    if args.arm is not None:
        matches = [arm for arm in arms if arm.name == args.arm]
        if not matches:
            names = ", ".join(arm.name for arm in arms)
            raise SystemExit(
                f"unknown arm {args.arm!r}; choose from: {names}")
        arms = matches
    print(f"running {', '.join(arm.name for arm in arms)} "
          f"({args.duration:.0f}s simulated) ...", file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("faults",
                {"arm": fault_arm_params(arm), "duration": args.duration},
                seed=args.seed)
        for arm in arms
    ])
    for arm, result in zip(arms, payloads):
        print()
        print(f"== {arm.name} "
              f"(adaptation {'on' if arm.adaptive else 'off'}) ==")
        header = (f"{'fault':<28} {'start':>7} {'end':>7} "
                  f"{'sent':>6} {'delivered':>9}")
        print(header)
        print("-" * len(header))
        for label, start, end, sent, got in result.per_window_counts():
            print(f"{label:<28} {start:>7.1f} {end:>7.1f} "
                  f"{sent:>6} {got:>9}")
        in_sent = result.sent_in_fault_windows()
        in_got = result.delivered_in_fault_windows()
        print(f"{'all fault windows':<28} {'':>7} {'':>7} "
              f"{in_sent:>6} {in_got:>9}")
        print(f"post-fault recovery rate: "
              f"{result.recovery_rate_fps(5.0):.1f} fps "
              f"(faults reported: {result.faults_reported})")
        if args.chart:
            rows = result.cumulative_counts(bin_width=args.duration / 30)
            print()
            print(ascii_cumulative(f"Fig 8 — {arm.name}", rows))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """Fig 11: fps held through a backbone cut, four recovery arms."""
    from repro.experiments.route_exp import route_arms

    arms = route_arms()
    if args.arm is not None:
        matches = [arm for arm in arms if arm.name == args.arm]
        if not matches:
            names = ", ".join(arm.name for arm in arms)
            raise SystemExit(
                f"unknown arm {args.arm!r}; choose from: {names}")
        arms = matches
    print(f"running {', '.join(arm.name for arm in arms)} on a "
          f"{args.routers}-router {args.topology} topology "
          f"({args.duration:.0f}s simulated) ...", file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("route",
                {"arm": route_arm_params(arm), "routers": args.routers,
                 "topology": args.topology, "duration": args.duration},
                seed=args.seed)
        for arm in arms
    ])
    first = payloads[0]
    print(f"topology: {first.topology}, {first.router_count} routers, "
          f"{first.link_count} links")
    print(f"primary path: {' -> '.join(first.primary_path)}")
    print(f"backbone cut at t={first.fail_at:g}s: "
          f"{first.backbone[0]}-{first.backbone[1]} "
          f"(cross traffic on {first.detour_edge[0]}-"
          f"{first.detour_edge[1]})")
    print()
    header = (f"{'arm':<20} {'pre-fail fps':>12} {'recovery fps':>12} "
              f"{'spf':>5} {'lsas':>6} {'resig':>5} {'unroutable':>10}")
    print(header)
    print("-" * len(header))
    for arm, result in zip(arms, payloads):
        print(f"{arm.name:<20} {result.pre_fail_fps():>12.2f} "
              f"{result.recovery_rate_fps():>12.2f} "
              f"{result.spf_runs:>5} {result.lsas_flooded:>6} "
              f"{result.resignal_rounds:>5} {result.unroutable_drops:>10}")
    if args.chart:
        for arm, result in zip(arms, payloads):
            rows = result.cumulative_counts(bin_width=args.duration / 30)
            print()
            print(ascii_cumulative(f"Fig 11 — {arm.name}", rows))
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    """Fig 9: the multi-stream capacity sweep behind admission control."""
    from repro.scale.capacity_exp import all_arms, render_fig9_capacity

    arms = all_arms()
    if args.arm is not None:
        matches = [arm for arm in arms if arm.name == args.arm]
        if not matches:
            names = ", ".join(arm.name for arm in arms)
            raise SystemExit(
                f"unknown arm {args.arm!r}; choose from: {names}")
        arms = matches
    try:
        counts = sorted({int(part) for part in args.streams.split(",")
                         if part.strip()})
    except ValueError:
        raise SystemExit(f"bad --streams value {args.streams!r}; expected "
                         "a comma-separated list of stream counts")
    if not counts or counts[0] < 1:
        raise SystemExit("--streams needs at least one positive count")
    print(f"running {', '.join(arm.name for arm in arms)} x "
          f"N={{{', '.join(str(c) for c in counts)}}} "
          f"({args.duration:.0f}s simulated each) ...", file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("capacity",
                {"arm": capacity_arm_params(arm), "streams": count,
                 "duration": args.duration}, seed=args.seed)
        for arm in arms for count in counts
    ])
    sweeps = {arm.name: [] for arm in arms}
    for payload in payloads:
        sweeps[payload.arm.name].append(payload)
    print(render_fig9_capacity(sweeps))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Fig 10: the hybrid fluid/packet scale sweep (10^2..10^5 streams)."""
    from repro.scale.fig10 import render_fig10_scale, scale_arms

    arms = scale_arms()
    if args.arm is not None:
        matches = [arm for arm in arms if arm.name == args.arm]
        if not matches:
            names = ", ".join(arm.name for arm in arms)
            raise SystemExit(
                f"unknown arm {args.arm!r}; choose from: {names}")
        arms = matches
    try:
        counts = sorted({int(part) for part in args.streams.split(",")
                         if part.strip()})
    except ValueError:
        raise SystemExit(f"bad --streams value {args.streams!r}; expected "
                         "a comma-separated list of stream counts")
    if not counts or counts[0] < 1:
        raise SystemExit("--streams needs at least one positive count")
    mode = "hybrid fluid/packet" if not args.packet_level else "pure packet"
    print(f"running {', '.join(arm.name for arm in arms)} x "
          f"N={{{', '.join(str(c) for c in counts)}}} "
          f"({mode}, {args.duration:.0f}s simulated each) ...",
          file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("scale",
                {"arm": scale_arm_params(arm), "streams": count,
                 "duration": args.duration,
                 "fluid": not args.packet_level}, seed=args.seed)
        for arm in arms for count in counts
    ])
    sweeps = {arm.name: [] for arm in arms}
    for payload in payloads:
        sweeps[payload.arm.name].append(payload)
    print(render_fig10_scale(sweeps))
    return 0


def _cmd_pubsub(args: argparse.Namespace) -> int:
    """Fig 12: the declarative-QoS pub-sub fan-out gauntlet."""
    from repro.pubsub.fig12 import pubsub_arms, render_fig12_pubsub

    arms = pubsub_arms()
    if args.arm is not None:
        matches = [arm for arm in arms if arm.name == args.arm]
        if not matches:
            names = ", ".join(arm.name for arm in arms)
            raise SystemExit(
                f"unknown arm {args.arm!r}; choose from: {names}")
        arms = matches
    try:
        counts = sorted({int(part) for part in args.subscribers.split(",")
                         if part.strip()})
    except ValueError:
        raise SystemExit(f"bad --subscribers value {args.subscribers!r}; "
                         "expected a comma-separated list of counts")
    if not counts or counts[0] < 1:
        raise SystemExit("--subscribers needs at least one positive count")
    print(f"running {', '.join(arm.name for arm in arms)} x "
          f"M={{{', '.join(str(c) for c in counts)}}} "
          f"({args.duration:.0f}s simulated each) ...",
          file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("pubsub",
                {"arm": pubsub_arm_params(arm), "subscribers": count,
                 "duration": args.duration}, seed=args.seed)
        for arm in arms for count in counts
    ])
    sweeps = {arm.name: [] for arm in arms}
    for payload in payloads:
        sweeps[payload.arm.name].append(payload)
    print(render_fig12_pubsub(sweeps))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a scenario with tracing on; write JSONL and a breakdown."""
    from repro.obs import JsonlSink, LatencyBreakdown, RingBufferSink, Tracer

    breakdown = LatencyBreakdown()
    sinks = [breakdown]
    jsonl: Optional[JsonlSink] = None
    try:
        if args.output is not None:
            jsonl = JsonlSink(args.output)
            sinks.append(jsonl)
        else:
            sinks.append(RingBufferSink(capacity=args.buffer))
    except (OSError, ValueError) as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 2
    layers = None
    if args.layers is not None:
        layers = [layer.strip() for layer in args.layers.split(",")
                  if layer.strip()]
    tracer = Tracer(sinks=sinks, layers=layers)

    print(f"tracing scenario {args.scenario!r} ...", file=sys.stderr)
    if args.scenario == "quickstart":
        from repro.experiments.scenarios import run_quickstart

        run_quickstart(tracer=tracer, verbose=not args.quiet)
    elif args.scenario == "uav":
        from repro.experiments.scenarios import run_uav_pipeline

        result = run_uav_pipeline(
            duration=args.duration, seed=args.seed, tracer=tracer,
            verbose=not args.quiet)
        if not args.quiet:
            # Reconciliation: the trace's per-flow frame latency must
            # agree with what the endpoint recorders measured.
            frame_stats = breakdown.frame_stats()
            for name, receiver in (
                ("avflow:uav1-out", result["actors"]["receiver1"]),
                ("avflow:uav2-out", result["actors"]["receiver2"]),
            ):
                if name in frame_stats:
                    trace_mean = frame_stats[name].mean
                    endpoint_mean = receiver.delivery.latency.stats().mean
                    print(f"reconcile {name}: trace mean "
                          f"{trace_mean * 1e3:.6f} ms vs endpoint "
                          f"{endpoint_mean * 1e3:.6f} ms "
                          f"(|diff| {abs(trace_mean - endpoint_mean):.2e} s)")
    else:
        arm = {"fig4a": PriorityArm.figure4a,
               "fig4b": PriorityArm.figure4b}[args.scenario]()
        result = run_priority_experiment(
            arm, duration=args.duration, seed=args.seed, tracer=tracer)
        if not args.quiet:
            stage_stats = breakdown.stage_stats()
            for sender in ("sender1", "sender2"):
                key = f"video{sender[-1]}/sink"
                if key in stage_stats and "to_servant" in stage_stats[key]:
                    trace_mean = stage_stats[key]["to_servant"].mean
                    endpoint_mean = result.stats(sender).mean
                    print(f"reconcile {key}: trace mean "
                          f"{trace_mean * 1e3:.6f} ms vs endpoint "
                          f"{endpoint_mean * 1e3:.6f} ms "
                          f"(|diff| {abs(trace_mean - endpoint_mean):.2e} s)")

    print(file=sys.stderr)
    total = tracer.records_emitted
    by_layer: dict = {}
    for (layer, _kind), count in tracer.counts.items():
        by_layer[layer] = by_layer.get(layer, 0) + count
    summary = ", ".join(f"{layer}={count}"
                        for layer, count in sorted(by_layer.items()))
    print(f"emitted {total} trace records ({summary})", file=sys.stderr)
    if jsonl is not None:
        print(f"wrote {jsonl.records_written} records to {args.output}",
              file=sys.stderr)
    print()
    print(breakdown.render())
    tracer.close()
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    arms = cpu_arms()
    print(f"running {', '.join(arm.name for arm in arms)} ...",
          file=sys.stderr)
    payloads = _runner(args).payloads([
        RunSpec("reservation_cpu",
                {"arm": cpu_arm_params(arm), "duration": args.duration},
                seed=args.seed)
        for arm in arms
    ])
    print(render_table2({
        arm.name: result.algorithm_stats
        for arm, result in zip(arms, payloads)
    }))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    """Randomized invariant soak: random configs under the checkers."""
    from repro.check.soak import run_soak, run_soak_case

    if args.replay is not None:
        try:
            case = json.loads(args.replay)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"bad --replay JSON: {exc}")
        print(f"replaying case {case.get('index', '?')} "
              f"(seed {case.get('seed', '?')}) ...", file=sys.stderr)
        verdict = run_soak_case(case)
        if verdict["ok"]:
            print(f"replay clean: {verdict['events']} events, "
                  f"{verdict['delivered']}/{verdict['sent']} frames "
                  f"delivered, {verdict['checked']} records checked")
            return 0
        print(f"replay FAILED ({verdict['failure']}): "
              f"{verdict['message']}")
        return 1

    report = run_soak(
        root_seed=args.seed, runs=args.runs, duration=args.duration,
        max_streams=args.max_streams, jobs=args.jobs,
        shrink=not args.no_shrink,
        emit=lambda line: print(line, file=sys.stderr))
    for entry in report["failures"]:
        print()
        print(f"case {entry['case']['index']} FAILED "
              f"({entry['failure']}"
              + (f", checker {entry['checker']}" if entry["checker"] else "")
              + f"): {entry['message']}")
        print(f"  minimal reproducer: {json.dumps(entry['shrunk'], sort_keys=True)}")
        print(f"  replay: {entry['replay']}")
    if report["ok"]:
        print(f"soak clean: {report['runs']} cases, "
              f"{report['events']} events, 0 violations")
        return 0
    print(f"\nsoak FAILED: {len(report['failures'])}/{report['runs']} "
          f"cases violated an invariant")
    return 1


def _dump_profile(profiler, path: str, limit: int = 20) -> None:
    """Write a cProfile's top-N cumulative-time functions to ``path``."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(limit)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buffer.getvalue())


def _cmd_bench(args: argparse.Namespace) -> int:
    """Regenerate every figure through the parallel engine.

    Prints a per-figure timing table and writes ``BENCH_figures.json``
    (wall time, simulated-event throughput, worker count, cache hits
    per figure) to ``--output``.
    """
    runner = _runner(args)
    suite = figure_specs()
    if args.figure:
        missing = [name for name in args.figure if name not in suite]
        if missing:
            known = ", ".join(suite)
            raise SystemExit(
                f"unknown figure(s) {', '.join(missing)}; known: {known}")
        suite = {name: suite[name] for name in args.figure}
    profile_dir = None
    if args.profile:
        import cProfile

        profile_dir = os.path.join("results", "profiles")
        os.makedirs(profile_dir, exist_ok=True)
    entries = {}
    total_wall = 0.0
    for name, specs in suite.items():
        print(f"bench {name} ({len(specs)} arms) ...", file=sys.stderr)
        started = time.perf_counter()
        if profile_dir is not None:
            profiler = cProfile.Profile()
            profiler.enable()
            results = runner.run(specs)
            profiler.disable()
            _dump_profile(profiler, os.path.join(profile_dir, f"{name}.txt"))
        else:
            results = runner.run(specs)
        wall = time.perf_counter() - started
        total_wall += wall
        events = sum(r.events for r in results)
        entries[name] = {
            "wall_seconds": round(wall, 4),
            "events": events,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "runs": len(results),
            "cache_hits": sum(1 for r in results if r.cached),
            "workers": runner.jobs,
        }
    header = f"{'figure':<40} {'wall':>8} {'events/s':>10} {'hits':>5}"
    print(header)
    print("-" * len(header))
    for name, entry in entries.items():
        print(f"{name:<40} {entry['wall_seconds']:>7.2f}s "
              f"{entry['events_per_sec']:>10,} "
              f"{entry['cache_hits']:>3}/{entry['runs']}")
    print(f"{'total':<40} {total_wall:>7.2f}s   "
          f"(jobs={runner.jobs}, cache "
          f"{'on' if runner.cache_enabled else 'off'})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(entries, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's experiments from the command line.",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="root random seed (default 1)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes for independent arms "
                             "(default: REPRO_JOBS or the CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every arm, ignoring the on-disk "
                             "result cache")
    parser.add_argument("--scheduler", default=None,
                        choices=sorted(SCHEDULER_BACKENDS),
                        help="pending-event backend for the simulation "
                             "kernel (default: REPRO_SCHEDULER or "
                             f"{DEFAULT_SCHEDULER}); results are identical "
                             "either way — this switches the engine, not "
                             "the experiment")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, help_text, duration):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=duration,
                       help=f"simulated seconds (default {duration:g})")
        p.set_defaults(func=func)
        return p

    for name, func, help_text in (
        ("fig4", _cmd_fig4, "control runs (idle vs congested)"),
        ("fig5", _cmd_fig5, "thread priorities alone"),
        ("fig6", _cmd_fig6, "thread priorities + DSCP"),
        ("priority-all", _cmd_all_priority, "all five section 5.1 arms"),
    ):
        p = add(name, func, help_text, 30.0)
        p.add_argument("--chart", action="store_true",
                       help="also draw ASCII latency charts")

    for name, func in (("table1", _cmd_table1), ("fig7", _cmd_fig7)):
        p = add(name, func, "network reservation experiment", 300.0)
        p.add_argument("--load-start", type=float, default=60.0)
        p.add_argument("--load-end", type=float, default=120.0)
        p.add_argument("--arm", default=None,
                       help="run a single arm (e.g. 5-partial-filtering)")

    add("table2", _cmd_table2, "CPU reservation experiment", 120.0)

    p = add("faults", _cmd_faults,
            "fault-injection experiment (fig 8 chaos arms)", 120.0)
    p.add_argument("--arm", default=None,
                   help="run a single arm (static or adaptive)")
    p.add_argument("--chart", action="store_true",
                   help="also draw ASCII cumulative-delivery charts")

    p = add("route", _cmd_route,
            "fig 11 rerouting gauntlet (backbone cut on a generated "
            "topology, four recovery arms)", 40.0)
    p.add_argument("--routers", type=int, default=56,
                   help="router count for the generated topology "
                        "(default 56; the family spans 50-500)")
    p.add_argument("--topology", default="waxman",
                   choices=["waxman", "fattree", "wan"],
                   help="topology generator (default waxman)")
    p.add_argument("--arm", default=None,
                   help="run a single arm (static, static-resignal, "
                        "dynamic, dynamic-resignal)")
    p.add_argument("--chart", action="store_true",
                   help="also draw ASCII cumulative-delivery charts")

    p = add("capacity", _cmd_capacity,
            "fig 9 capacity sweep (N streams x four arms)", 12.0)
    p.add_argument("--streams", default="1,2,4,8,16,32,64",
                   help="comma-separated stream counts "
                        "(default 1,2,4,8,16,32,64)")
    p.add_argument("--arm", default=None,
                   help="run a single arm (best-effort, priority, "
                        "reserves, adaptive)")

    p = add("scale", _cmd_scale,
            "fig 10 hybrid fluid/packet scale sweep "
            "(10^2..10^5 streams x four arms)", 8.0)
    p.add_argument("--streams", default="100,1000,10000,100000",
                   help="comma-separated stream counts "
                        "(default 100,1000,10000,100000)")
    p.add_argument("--arm", default=None,
                   help="run a single arm (best-effort, reserves, "
                        "adaptive, overload)")
    p.add_argument("--packet-level", action="store_true",
                   help="packet-simulate every stream instead of the "
                        "hybrid fluid model (validation mode; only "
                        "sensible at small N)")

    p = add("pubsub", _cmd_pubsub,
            "fig 12 declarative-QoS pub-sub fan-out gauntlet "
            "(K publishers x M subscribers x seven arms)", 8.0)
    p.add_argument("--subscribers", default="128,1024,2048",
                   help="comma-separated total-subscriber counts "
                        "(default 128,1024,2048)")
    p.add_argument("--arm", default=None,
                   help="run a single arm (best-effort, reliable, "
                        "adaptive, ownership, durable, filtered, "
                        "partition)")

    p = sub.add_parser(
        "soak",
        help="randomized invariant soak: run random scenario x fault x "
             "capacity configs under the runtime checkers",
    )
    p.add_argument("--runs", type=int, default=20,
                   help="number of random cases to run (default 20)")
    p.add_argument("--duration", type=float, default=6.0,
                   help="simulated seconds per case (default 6)")
    p.add_argument("--max-streams", type=int, default=8,
                   help="upper bound on streams per case (default 8)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip minimizing failing cases")
    p.add_argument("--replay", default=None, metavar="JSON",
                   help="re-run one exact case from its JSON form "
                        "(as printed by a failure report)")
    # Also accepted after the subcommand (replay commands read
    # naturally as `repro soak --seed S ...`); SUPPRESS keeps the
    # global pre-subcommand values when these are omitted.
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                   help="root seed deriving every case (default 1)")
    p.add_argument("-j", "--jobs", type=int, default=argparse.SUPPRESS,
                   help="worker processes (default: auto)")
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser(
        "bench",
        help="regenerate the full figure suite through the parallel "
             "engine and report per-figure timings",
    )
    p.add_argument("--figure", action="append", default=None,
                   help="limit to one figure (repeatable); default: all")
    p.add_argument("-o", "--output", default="BENCH_figures.json",
                   help="write per-figure timing JSON here "
                        "(default BENCH_figures.json; '' to skip)")
    p.add_argument("--profile", action="store_true",
                   help="cProfile each figure and dump the top-20 "
                        "cumulative functions to results/profiles/ "
                        "(profiles the coordinating process; run with "
                        "-j 1 --no-cache to capture the scenario code "
                        "itself)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "trace",
        help="run a scenario with structured tracing and report a "
             "latency breakdown",
    )
    p.add_argument("--scenario", default="quickstart",
                   choices=["quickstart", "uav", "fig4a", "fig4b"],
                   help="which scenario to trace (default quickstart)")
    p.add_argument("--duration", type=float, default=30.0,
                   help="simulated seconds for timed scenarios "
                        "(default 30)")
    p.add_argument("-o", "--output", default=None,
                   help="write the trace as JSON Lines to this path")
    p.add_argument("--buffer", type=int, default=65536,
                   help="ring-buffer capacity when not writing JSONL "
                        "(default 65536)")
    p.add_argument("--layers", default=None,
                   help="comma-separated layer allow-list "
                        "(sim,os,net,orb,av,quo,fault); default: all")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the scenario's own narrative output")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.scheduler is not None:
        # Exported rather than threaded through: worker processes and
        # every Kernel() construction read REPRO_SCHEDULER themselves.
        os.environ[SCHEDULER_ENV] = args.scheduler
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
