"""Randomized soak harness: invariant checkers x random configurations.

The unit and property suites check behaviours someone thought of; the
soak harness searches for the ones nobody did.  From a single root
seed it derives a stream of random capacity-farm configurations —
arm x stream count x link capacities x fault plan — and runs each
under the full :mod:`repro.check.invariants` suite.  Any violated
invariant is shrunk to a minimal reproducer (drop faults wholesale,
then halves, then one-by-one; then halve the stream count) and
reported with a ready-to-paste replay command.

Every case is a pure function of ``(root_seed, index)``, and cases
fan out through the :class:`~repro.experiments.runner.ExperimentRunner`
with caching off, so ``--jobs N`` changes wall-clock only — the
verdict for every case is identical at any worker count.
"""

from __future__ import annotations

import json
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.invariants import InvariantViolation, default_suite

__all__ = [
    "generate_case",
    "generate_cases",
    "run_soak_case",
    "shrink_case",
    "replay_command",
    "run_soak",
]

#: The four fig 9 mechanism arms, all soak-eligible.
ARMS = ("best-effort", "priority", "reserves", "adaptive")
#: Bottleneck capacities to sample (below/at/above the fig 9 nominal).
BOTTLENECKS_BPS = (6e6, 10e6, 14e6)
#: Cross-traffic intensities to sample.
CROSS_BPS = (0.0, 2e6, 4e6)
#: Links faults may target, as (device, device) name pairs.
FAULT_LINKS = (("src", "router"), ("load", "router"), ("router", "dst"))
_FAULT_KINDS = ("link_flap", "loss_burst", "link_degrade", "node_crash")

#: The fig 12 QoS arms, all soak-eligible under the pub-sub family.
PUBSUB_ARMS = ("best-effort", "reliable", "adaptive", "ownership",
               "durable", "filtered", "partition")
#: Fan-out bottlenecks to sample (under/at/over the fig 12 nominal).
PUBSUB_BOTTLENECKS_BPS = (30e6, 60e6, 120e6)
#: Pub-sub topology targets for random faults.
PUBSUB_FAULT_LINKS = (("pub0", "router"), ("pub1", "router"),
                      ("brk", "router"), ("router", "sub"))
PUBSUB_FAULT_NODES = ("pub0", "pub1", "pub2", "pub3", "brk")
#: Smallest legal pub-sub population (the measured cohort itself).
PUBSUB_MIN_SUBSCRIBERS = 16

#: Large odd multiplier decorrelating per-case seeds from the root.
_SEED_STRIDE = 1_000_003


def case_seed(root_seed: int, index: int) -> int:
    return root_seed * _SEED_STRIDE + index


# ----------------------------------------------------------------------
# Configuration generation
# ----------------------------------------------------------------------
def _random_fault(rng: random.Random, duration: float,
                  links=FAULT_LINKS, nodes=("router",)) -> Dict:
    kind = rng.choice(_FAULT_KINDS)
    at = round(rng.uniform(0.5, max(0.6, duration - 0.5)), 3)
    window = round(rng.uniform(0.3, 1.5), 3)
    if kind == "node_crash":
        return {"kind": kind, "node": rng.choice(nodes), "at": at,
                "duration": window, "lose_state": rng.random() < 0.5}
    link = list(rng.choice(links))
    fault = {"kind": kind, "link": link, "at": at, "duration": window}
    if kind == "loss_burst":
        fault["loss"] = round(rng.uniform(0.05, 0.9), 3)
    elif kind == "link_degrade":
        fault["factor"] = round(rng.uniform(0.1, 0.9), 3)
    return fault


def generate_case(root_seed: int, index: int, duration: float = 6.0,
                  max_streams: int = 8) -> Dict:
    """The fully random configuration for soak run ``index``.

    Pure in ``(root_seed, index)``: the same pair always produces the
    same JSON-able case dict, which is what makes shrinking and replay
    exact.  Two families alternate under one seed stream: the fig 9
    capacity farm and the fig 12 pub-sub fan-out.
    """
    seed = case_seed(root_seed, index)
    rng = random.Random(seed)
    n_faults = rng.randint(0, 4)
    if rng.random() < 0.5:
        return {
            "index": int(index),
            "seed": int(seed),
            "family": "capacity",
            "arm": rng.choice(ARMS),
            "streams": rng.randint(1, max(1, int(max_streams))),
            "duration": float(duration),
            "bottleneck_bps": rng.choice(BOTTLENECKS_BPS),
            "cross_traffic_bps": rng.choice(CROSS_BPS),
            "faults": [_random_fault(rng, duration)
                       for _ in range(n_faults)],
        }
    return {
        "index": int(index),
        "seed": int(seed),
        "family": "pubsub",
        "arm": rng.choice(PUBSUB_ARMS),
        "subscribers": rng.choice((16, 32, 128, 512)),
        "duration": float(duration),
        "bottleneck_bps": rng.choice(PUBSUB_BOTTLENECKS_BPS),
        "faults": [
            _random_fault(rng, duration, links=PUBSUB_FAULT_LINKS,
                          nodes=PUBSUB_FAULT_NODES)
            for _ in range(n_faults)
        ],
    }


def generate_cases(root_seed: int, runs: int, duration: float = 6.0,
                   max_streams: int = 8) -> List[Dict]:
    return [generate_case(root_seed, index, duration, max_streams)
            for index in range(int(runs))]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_soak_case(case: Dict) -> Dict:
    """Run one case under the full checker suite; picklable verdict.

    ``ok`` is True when the run completed and every invariant (runtime
    and teardown) held.  Violations carry the checker name and message;
    any other exception is reported as a crash — a soak failure either
    way.  ``case["family"]`` selects the scenario (``"capacity"``, the
    default for pre-family replay dicts, or ``"pubsub"``).
    """
    suite = default_suite()
    verdict = {"ok": True, "case": dict(case), "checker": None,
               "message": None, "failure": None, "events": 0}
    family = case.get("family", "capacity")
    try:
        if family == "pubsub":
            from repro.pubsub.fig12 import (
                PubSubArm, pubsub_arms, run_pubsub_experiment)
            arms = {a.name: a for a in pubsub_arms()}
            arm = arms.get(case["arm"])
            if arm is None:
                raise ValueError(f"unknown pubsub soak arm {case['arm']!r} "
                                 f"(have {sorted(arms)})")
            result = run_pubsub_experiment(
                arm,
                subscribers=int(case["subscribers"]),
                duration=float(case["duration"]),
                seed=int(case["seed"]),
                bottleneck_bps=float(case["bottleneck_bps"]),
                fault_plan=case.get("faults") or [],
                checks=suite,
            )
            verdict["delivered"] = sum(
                row.delivered for row in result.reader_rows)
            verdict["sent"] = sum(
                row.sent_to for row in result.reader_rows)
        elif family == "capacity":
            from repro.scale.capacity_exp import (
                all_arms, run_capacity_experiment)
            arms = {a.name: a for a in all_arms()}
            arm = arms.get(case["arm"])
            if arm is None:
                raise ValueError(f"unknown soak arm {case['arm']!r} "
                                 f"(have {sorted(arms)})")
            result = run_capacity_experiment(
                arm,
                streams=int(case["streams"]),
                duration=float(case["duration"]),
                seed=int(case["seed"]),
                bottleneck_bps=float(case["bottleneck_bps"]),
                cross_traffic_bps=float(case["cross_traffic_bps"]),
                fault_plan=case.get("faults") or None,
                checks=suite,
            )
            verdict["delivered"] = result.total("delivered")
            verdict["sent"] = result.total("sent")
        else:
            raise ValueError(f"unknown soak family {family!r}")
    except InvariantViolation as violation:
        verdict.update(ok=False, failure="invariant",
                       checker=violation.checker, message=str(violation))
        return verdict
    except Exception as exc:  # noqa: BLE001 - soak reports, never raises
        verdict.update(ok=False, failure="crash",
                       message=f"{type(exc).__name__}: {exc}")
        return verdict
    verdict["events"] = result.events_executed
    verdict["checked"] = suite.events_dispatched
    return verdict


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_case(case: Dict, budget: int = 20,
                run: Callable[[Dict], Dict] = run_soak_case
                ) -> Tuple[Dict, int]:
    """Reduce a failing case to a smaller one that still fails.

    Delta-debugging lite, bounded by ``budget`` extra runs: drop the
    fault plan wholesale, then by halves, then one event at a time;
    finally halve the stream count.  Returns the smallest failing case
    found and the number of reduction runs spent.
    """
    trials = [0]

    def fails(candidate: Dict) -> bool:
        if trials[0] >= budget:
            return False
        trials[0] += 1
        return not run(candidate)["ok"]

    best = dict(case)
    faults = list(best["faults"])
    if faults and fails({**best, "faults": []}):
        faults = []
    else:
        while len(faults) > 1:
            half = len(faults) // 2
            for subset in (faults[half:], faults[:half]):
                if fails({**best, "faults": subset}):
                    faults = subset
                    break
            else:
                break
        index = 0
        while index < len(faults) and len(faults) > 1:
            subset = faults[:index] + faults[index + 1:]
            if fails({**best, "faults": subset}):
                faults = subset
            else:
                index += 1
    best = {**best, "faults": faults}
    if best.get("family", "capacity") == "pubsub":
        load_key, floor = "subscribers", PUBSUB_MIN_SUBSCRIBERS
    else:
        load_key, floor = "streams", 1
    while best[load_key] > floor:
        candidate = {**best,
                     load_key: max(floor, best[load_key] // 2)}
        if fails(candidate):
            best = candidate
        else:
            break
    return best, trials[0]


def replay_command(case: Dict) -> str:
    """The exact CLI invocation reproducing ``case``."""
    return f"repro soak --replay '{json.dumps(case, sort_keys=True)}'"


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def run_soak(root_seed: int, runs: int, duration: float = 6.0,
             max_streams: int = 8, jobs: Optional[int] = None,
             shrink: bool = True, shrink_budget: int = 20,
             emit: Optional[Callable[[str], None]] = None) -> Dict:
    """Run ``runs`` random cases; shrink and report every failure.

    Caching is forced off — soak derives its value from re-executing,
    and a verdict must reflect the code under test, never a stale
    entry.  Results merge in case order, so the report is identical at
    any ``jobs``.
    """
    from repro.experiments.runner import ExperimentRunner, RunSpec

    def say(message: str) -> None:
        if emit is not None:
            emit(message)

    cases = generate_cases(root_seed, runs, duration, max_streams)
    runner = ExperimentRunner(jobs=jobs, cache=False)
    say(f"soak: {len(cases)} cases from root seed {root_seed} "
        f"({runner.jobs} jobs)")
    specs = [RunSpec("soak_case", {"case": case}) for case in cases]
    verdicts = runner.payloads(specs)

    failures = []
    total_events = 0
    for verdict in verdicts:
        total_events += verdict.get("events", 0) or 0
        if verdict["ok"]:
            continue
        case = verdict["case"]
        say(f"soak: case {case['index']} FAILED "
            f"({verdict['failure']}: {verdict['message']})")
        entry = {
            "case": case,
            "failure": verdict["failure"],
            "checker": verdict["checker"],
            "message": verdict["message"],
            "shrunk": case,
            "shrink_runs": 0,
        }
        if shrink:
            shrunk, spent = shrink_case(case, budget=shrink_budget)
            entry["shrunk"] = shrunk
            entry["shrink_runs"] = spent
            if spent:
                say(f"soak: shrunk case {case['index']} to "
                    f"{len(shrunk['faults'])} fault(s), "
                    f"{shrunk['streams']} stream(s) in {spent} runs")
        entry["replay"] = replay_command(entry["shrunk"])
        say(f"soak: replay with: {entry['replay']}")
        failures.append(entry)

    report = {
        "root_seed": int(root_seed),
        "runs": len(cases),
        "failures": failures,
        "ok": not failures,
        "events": total_events,
    }
    say(f"soak: {len(cases) - len(failures)}/{len(cases)} cases clean, "
        f"{total_events} events simulated")
    return report
