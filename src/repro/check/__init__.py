"""Runtime invariant checking and randomized soak testing.

``repro.check`` watches a running simulation for violated conservation
laws — packet accounting, ledger bounds, scheduler sanity — through
the same zero-cost trace layer the observability stack uses, and
drives randomized soak campaigns that hunt for configurations under
which one of those laws breaks.

Public surface:

* :class:`~repro.check.world.World` — read-only object graph handed
  to checkers.
* :class:`~repro.check.invariants.CheckSuite` /
  :func:`~repro.check.invariants.default_suite` — the monitors,
  installable as one trace sink.
* :class:`~repro.check.invariants.InvariantViolation` — raised
  fail-fast at the first broken invariant.
* :func:`~repro.check.soak.run_soak` — the ``repro soak`` driver.
"""

from repro.check.world import World
from repro.check.invariants import (
    CheckSuite,
    ContractChecker,
    InvariantChecker,
    InvariantViolation,
    PacketConservationChecker,
    QdiscAccountingChecker,
    ReserveLedgerChecker,
    RoutingChecker,
    ThreadStateChecker,
    TimeMonotonicityChecker,
    TokenBucketChecker,
    default_suite,
)
from repro.check.soak import (
    generate_case,
    generate_cases,
    replay_command,
    run_soak,
    run_soak_case,
    shrink_case,
)

__all__ = [
    "World",
    "CheckSuite",
    "InvariantChecker",
    "InvariantViolation",
    "TimeMonotonicityChecker",
    "QdiscAccountingChecker",
    "TokenBucketChecker",
    "ReserveLedgerChecker",
    "PacketConservationChecker",
    "ContractChecker",
    "RoutingChecker",
    "ThreadStateChecker",
    "default_suite",
    "generate_case",
    "generate_cases",
    "run_soak_case",
    "shrink_case",
    "replay_command",
    "run_soak",
]
