"""Runtime invariant monitors over the trace stream.

Each :class:`InvariantChecker` watches one conservation or sanity law
of the simulation — packet conservation, ledger bounds, scheduler
state — by consuming the same trace records the observability layer
already emits, plus read-only walks of the live object graph
(:class:`~repro.check.world.World`).  A :class:`CheckSuite` bundles
checkers behind a single :class:`~repro.obs.sinks.TraceSink`-shaped
object, so installing the suite is just adding a sink; with no suite
installed the simulation pays nothing (the ``kernel.tracer is None``
fast path).

Checkers are *fail-fast*: the first violated invariant raises
:class:`InvariantViolation` out of the emitting instrumentation site,
aborting the run at the exact simulated instant the books stopped
balancing.  ``final_check()`` runs the teardown laws (no silently
consumed packets, ledgers within bounds, scheduler quiescent-sane)
after ``kernel.run`` returns.

Checkers never mutate simulation state and never consume random
numbers, so a checked run produces bit-identical results to an
unchecked one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.quantize import EPSILON
from repro.obs.trace import TraceRecord, Tracer
from repro.check.world import World

__all__ = [
    "InvariantViolation",
    "InvariantChecker",
    "CheckSuite",
    "TimeMonotonicityChecker",
    "QdiscAccountingChecker",
    "TokenBucketChecker",
    "ReserveLedgerChecker",
    "PacketConservationChecker",
    "ContractChecker",
    "ThreadStateChecker",
    "FluidConservationChecker",
    "RoutingChecker",
    "default_suite",
]

#: Slack for comparing float ledgers (shared numeric policy).
_LEDGER_SLACK = 1e-9


class InvariantViolation(AssertionError):
    """A runtime invariant failed.

    Subclasses :class:`AssertionError` so generic test harnesses treat
    it as a failed assertion, while soak drivers can catch it
    specifically and attach the reproducing configuration.
    """

    def __init__(self, checker: str, message: str,
                 context: Optional[dict] = None) -> None:
        self.checker = checker
        self.context = dict(context or {})
        detail = ""
        if self.context:
            pairs = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            )
            detail = f" [{pairs}]"
        super().__init__(f"[{checker}] {message}{detail}")


class InvariantChecker:
    """Base monitor: attach to a world, watch records, check teardown.

    Attributes
    ----------
    name:
        Short identifier used in violation messages.
    layers:
        Trace layers this checker wants (``None`` = every layer).  The
        suite fans records out by layer so uninterested checkers never
        see them.
    """

    name = "invariant"
    layers: Optional[tuple] = None

    def __init__(self) -> None:
        self.world: Optional[World] = None
        #: Records this checker inspected (observability).
        self.events_seen = 0

    def attach(self, world: World) -> None:
        self.world = world

    def on_event(self, record: TraceRecord) -> None:  # pragma: no cover
        """Called for every record in this checker's layers."""

    def final_check(self) -> None:  # pragma: no cover
        """Called once after the run; assert teardown laws."""

    # ------------------------------------------------------------------
    def fail(self, message: str, **context) -> None:
        if self.world is not None:
            context.setdefault("time", self.world.kernel.now)
        raise InvariantViolation(self.name, message, context)

    def require(self, condition: bool, message: str, **context) -> None:
        if not condition:
            self.fail(message, **context)


class CheckSuite:
    """A set of invariant checkers behind one trace sink.

    Usage::

        suite = default_suite()
        suite.install(World(kernel, network=net, hosts=hosts))
        kernel.run(until=duration)
        suite.final_check()

    ``install`` reuses the kernel's tracer when one is attached (the
    suite becomes an extra sink) or attaches a private tracer
    otherwise; ``uninstall`` undoes exactly what ``install`` did.
    """

    def __init__(self, checkers: List[InvariantChecker]) -> None:
        self.checkers = list(checkers)
        self.world: Optional[World] = None
        self._tracer: Optional[Tracer] = None
        self._owns_tracer = False
        self._by_layer: Dict[str, List[InvariantChecker]] = {}
        self._all_layers: List[InvariantChecker] = []
        #: Records fanned out to at least one checker.
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, world: World, tracer: Optional[Tracer] = None) -> "CheckSuite":
        """Attach every checker to ``world`` and start watching traces."""
        self.world = world
        self._by_layer = {}
        self._all_layers = []
        for checker in self.checkers:
            checker.attach(world)
            if checker.layers is None:
                self._all_layers.append(checker)
            else:
                for layer in checker.layers:
                    self._by_layer.setdefault(layer, []).append(checker)
        kernel = world.kernel
        if tracer is None:
            tracer = kernel.tracer
        if tracer is not None:
            tracer.add_sink(self)
            self._owns_tracer = False
        else:
            tracer = Tracer(sinks=[self])
            tracer.attach(kernel)
            self._owns_tracer = True
        self._tracer = tracer
        return self

    def uninstall(self) -> None:
        """Stop watching; detaches the private tracer if we created it."""
        if self._tracer is not None:
            if self in self._tracer.sinks:
                self._tracer.sinks.remove(self)
            if self._owns_tracer:
                self._tracer.detach()
        self._tracer = None
        self._owns_tracer = False

    # ------------------------------------------------------------------
    # TraceSink protocol
    # ------------------------------------------------------------------
    def emit(self, record: TraceRecord) -> None:
        interested = self._by_layer.get(record.layer)
        if interested:
            self.events_dispatched += 1
            for checker in interested:
                checker.events_seen += 1
                checker.on_event(record)
        if self._all_layers:
            for checker in self._all_layers:
                checker.events_seen += 1
                checker.on_event(record)

    def close(self) -> None:
        """TraceSink protocol; nothing to flush."""

    # ------------------------------------------------------------------
    def final_check(self) -> None:
        """Run every checker's teardown laws (call after kernel.run)."""
        for checker in self.checkers:
            checker.final_check()

    def summary(self) -> Dict[str, int]:
        return {checker.name: checker.events_seen for checker in self.checkers}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CheckSuite {[c.name for c in self.checkers]}>"


# ----------------------------------------------------------------------
# Individual monitors
# ----------------------------------------------------------------------
class TimeMonotonicityChecker(InvariantChecker):
    """Trace (and hence kernel event) times never run backwards."""

    name = "time-monotonic"
    layers = None  # every layer

    def __init__(self) -> None:
        super().__init__()
        self._last = float("-inf")
        self._last_kind = None

    def on_event(self, record: TraceRecord) -> None:
        if record.time < self._last:
            self.fail(
                "event time ran backwards",
                event=f"{record.layer}.{record.kind}",
                event_time=record.time, previous_time=self._last,
                previous_event=self._last_kind,
            )
        self._last = record.time
        self._last_kind = f"{record.layer}.{record.kind}"

    def final_check(self) -> None:
        if self._last == float("-inf"):
            return
        now = self.world.kernel.now
        self.require(
            now + EPSILON >= self._last,
            "kernel clock ended before the last trace record",
            kernel_now=now, last_record=self._last,
        )


class QdiscAccountingChecker(InvariantChecker):
    """Queue books balance: ``len(q) == enqueued - dequeued`` always.

    (Dropped packets never enter the queue, so they do not appear in
    the length identity; ``dropped`` is separately required to be
    non-negative and, for :class:`GuaranteedRateQueue`, to cover every
    drop of the inner DiffServ base exactly once.)
    """

    name = "qdisc-accounting"
    layers = ("net",)

    def __init__(self) -> None:
        super().__init__()
        self._qdiscs: Dict[str, object] = {}

    def attach(self, world: World) -> None:
        super().attach(world)
        self._qdiscs = world.qdiscs()

    def _check_one(self, label: str, qdisc) -> None:
        held = len(qdisc)
        expected = qdisc.enqueued - qdisc.dequeued
        self.require(
            held == expected,
            "queue length disagrees with enqueue/dequeue books",
            qdisc=label, len=held, enqueued=qdisc.enqueued,
            dequeued=qdisc.dequeued, dropped=qdisc.dropped,
        )
        self.require(
            qdisc.enqueued >= 0 and qdisc.dequeued >= 0 and qdisc.dropped >= 0,
            "negative queue counter", qdisc=label,
            enqueued=qdisc.enqueued, dequeued=qdisc.dequeued,
            dropped=qdisc.dropped,
        )
        flow_drops = sum(qdisc.drops_by_flow.values())
        self.require(
            flow_drops == qdisc.dropped,
            "per-flow drop ledger disagrees with the drop counter",
            qdisc=label, dropped=qdisc.dropped, by_flow=flow_drops,
        )
        base = getattr(qdisc, "_base", None)
        if base is not None:
            self.require(
                len(base) == base.enqueued - base.dequeued,
                "inner base queue books do not balance",
                qdisc=label, base_len=len(base),
                base_enqueued=base.enqueued, base_dequeued=base.dequeued,
            )
            self.require(
                base.dropped <= qdisc.dropped,
                "inner base drops not mirrored into the outer queue",
                qdisc=label, base_dropped=base.dropped,
                outer_dropped=qdisc.dropped,
            )

    def on_event(self, record: TraceRecord) -> None:
        if not record.kind.startswith("hop."):
            return
        fields = record.fields or {}
        label = fields.get("iface")
        if label is None:
            return
        qdisc = self._qdiscs.get(label)
        if qdisc is not None:
            self._check_one(label, qdisc)

    def final_check(self) -> None:
        for label, qdisc in self._qdiscs.items():
            self._check_one(label, qdisc)


class TokenBucketChecker(InvariantChecker):
    """Every policing bucket holds ``0 <= tokens <= depth`` always.

    Reads the raw ``_tokens`` field deliberately: the ``tokens``
    property refills as a side effect, and a checker-triggered refill
    would change float accumulation and break the bit-identity
    guarantee.
    """

    name = "token-bucket"
    layers = ("net",)

    def __init__(self) -> None:
        super().__init__()
        self._grqs: Dict[str, object] = {}

    def attach(self, world: World) -> None:
        super().attach(world)
        self._grqs = {
            label: qdisc for label, qdisc in world.qdiscs().items()
            if hasattr(qdisc, "reserved_flows")
        }

    def _check_one(self, label: str, qdisc) -> None:
        for flow_id, bucket in qdisc._buckets.items():
            tokens = bucket._tokens
            self.require(
                0.0 <= tokens <= bucket.depth_bytes,
                "token count escaped [0, depth]",
                qdisc=label, flow=flow_id, tokens=tokens,
                depth=bucket.depth_bytes,
            )

    def on_event(self, record: TraceRecord) -> None:
        if record.kind != "hop.enqueue":
            return
        fields = record.fields or {}
        qdisc = self._grqs.get(fields.get("iface"))
        if qdisc is not None:
            self._check_one(fields["iface"], qdisc)

    def final_check(self) -> None:
        for label, qdisc in self._grqs.items():
            self._check_one(label, qdisc)


class ReserveLedgerChecker(InvariantChecker):
    """CPU-reserve and RSVP admission ledgers stay within their bounds.

    * per manager: ``sum(C/T)`` over admitted reserves never exceeds
      the utilization bound, and each budget sits in ``[0, C]``;
    * per RSVP agent and interface: installed reservation rates sum to
      at most ``bandwidth * utilization_bound`` and are each positive.

    Budgets are read raw (no ``sync()``), since syncing replenishes —
    a mutation a checker must never cause.
    """

    name = "reserve-ledger"
    layers = ("os", "net")

    _OS_KINDS = frozenset(("reserve.replenish", "reserve.deplete"))

    def _check_cpu_ledgers(self) -> None:
        for manager in self.world.reserve_managers():
            total = 0.0
            for reserve in manager._reserves:
                total += reserve.compute / reserve.period
                self.require(
                    -_LEDGER_SLACK <= reserve.budget_remaining
                    <= reserve.compute + _LEDGER_SLACK,
                    "reserve budget escaped [0, C]",
                    reserve=reserve.reserve_id,
                    budget=reserve.budget_remaining, compute=reserve.compute,
                )
                self.require(
                    reserve.active,
                    "cancelled reserve still on the manager's books",
                    reserve=reserve.reserve_id,
                )
            self.require(
                total <= manager.utilization_bound + _LEDGER_SLACK,
                "admitted CPU utilization exceeds the bound",
                cpu=manager.cpu.name, total=total,
                bound=manager.utilization_bound,
            )

    def _check_rsvp_ledgers(self) -> None:
        for agent in self.world.rsvp_agents():
            for interface, table in agent._reserved.items():
                # Admission was granted against the as-built rate; a
                # fault-layer degrade may transiently leave admitted
                # reservations above the *current* rate (the paper's
                # adaptation story reacts to that — RSVP does not
                # auto-revoke), so the ledger law binds the nominal.
                capacity = (
                    interface.link.nominal_bandwidth_bps
                    * agent.utilization_bound
                )
                reserved = 0.0
                for flow_id, rate in table.items():
                    self.require(
                        rate > 0.0,
                        "non-positive reserved rate installed",
                        iface=f"{interface.owner.name}.{interface.name}",
                        flow=flow_id, rate=rate,
                    )
                    reserved += rate
                self.require(
                    reserved <= capacity + _LEDGER_SLACK,
                    "RSVP reservations exceed the link budget",
                    iface=f"{interface.owner.name}.{interface.name}",
                    reserved=reserved, capacity=capacity,
                )

    _NET_KINDS = frozenset(("rsvp.expire", "rsvp.release"))

    def on_event(self, record: TraceRecord) -> None:
        if record.layer == "os":
            if record.kind in self._OS_KINDS:
                self._check_cpu_ledgers()
        elif record.kind in self._NET_KINDS:
            self._check_rsvp_ledgers()

    def final_check(self) -> None:
        self._check_cpu_ledgers()
        self._check_rsvp_ledgers()


class PacketConservationChecker(InvariantChecker):
    """Every data packet ends in exactly one accounted fate.

    Per packet id a small state machine follows the hop trace:
    ``QUEUED`` (in a qdisc), ``WIRE`` (serializing/propagating),
    ``DEVICE`` (received, being routed or delivered), and the terminal
    fates ``DELIVERED`` / ``DROPPED`` / ``LOST`` / ``UNROUTABLE`` /
    ``UNDELIVERABLE``.  Illegal transitions — a packet dequeued while
    not queued, delivered twice, touched after a terminal fate — fail
    immediately.  At teardown no packet may remain in ``DEVICE`` (that
    is a silently consumed packet: it was received but neither
    forwarded, delivered, nor counted as a drop), and the number of
    tracked ``QUEUED`` packets can never exceed what the queues
    physically hold.

    RSVP signaling (flow ids starting ``"rsvp:"``) is excluded:
    signaling packets are legitimately consumed and re-created at
    every hop, so per-id conservation does not apply.
    """

    name = "packet-conservation"
    layers = ("net",)

    QUEUED = "queued"
    WIRE = "wire"
    DEVICE = "device"
    DELIVERED = "delivered"
    DROPPED = "dropped"
    LOST = "lost"
    UNROUTABLE = "unroutable"
    UNDELIVERABLE = "undeliverable"

    _TERMINAL = frozenset((DELIVERED, DROPPED, LOST, UNROUTABLE,
                           UNDELIVERABLE))

    #: kind -> (allowed previous states, next state); ``None`` in the
    #: allowed set means "first sighting of this packet id".
    _TRANSITIONS = {
        "hop.enqueue": (frozenset((None, DEVICE)), QUEUED),
        "hop.drop": (frozenset((None, DEVICE)), DROPPED),
        "hop.dequeue": (frozenset((QUEUED,)), WIRE),
        "hop.loss": (frozenset((WIRE,)), LOST),
        "hop.rx": (frozenset((WIRE,)), DEVICE),
        "route.unroutable": (frozenset((DEVICE,)), UNROUTABLE),
        "nic.deliver": (frozenset((None, DEVICE)), DELIVERED),
        "nic.undeliverable": (frozenset((None, DEVICE)), UNDELIVERABLE),
    }

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[int, str] = {}
        self._flow: Dict[int, str] = {}
        self.tracked = 0

    def _counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for state in self._state.values():
            counts[state] = counts.get(state, 0) + 1
        return counts

    def on_event(self, record: TraceRecord) -> None:
        if record.flow is None or record.flow.startswith("rsvp:"):
            return
        packet_id = (record.fields or {}).get("packet")
        if packet_id is None:
            return
        previous = self._state.get(packet_id)
        if record.kind == "route.forward":
            self.require(
                previous == self.DEVICE,
                "packet routed while not held by a device",
                packet=packet_id, flow=record.flow, state=previous,
            )
            return
        rule = self._TRANSITIONS.get(record.kind)
        if rule is None:
            return
        allowed, nxt = rule
        if previous in self._TERMINAL:
            self.fail(
                "packet resurrected after a terminal fate",
                packet=packet_id, flow=record.flow, state=previous,
                event=record.kind,
            )
        if previous not in allowed:
            self.fail(
                "illegal packet life-cycle transition",
                packet=packet_id, flow=record.flow, state=previous,
                event=record.kind,
            )
        if previous is None:
            self.tracked += 1
            self._flow[packet_id] = record.flow
        self._state[packet_id] = nxt

    def final_check(self) -> None:
        counts = self._counts()
        leaked = [
            (pid, self._flow.get(pid))
            for pid, state in self._state.items() if state == self.DEVICE
        ]
        self.require(
            not leaked,
            "packets received by a device but never delivered, forwarded "
            "or dropped",
            leaked=leaked[:10], count=len(leaked),
        )
        physically_queued = sum(
            len(qdisc) for qdisc in self.world.qdiscs().values()
        )
        tracked_queued = counts.get(self.QUEUED, 0)
        self.require(
            tracked_queued <= physically_queued,
            "more packets tracked as queued than the queues hold",
            tracked=tracked_queued, physical=physically_queued,
        )
        terminal = sum(counts.get(state, 0) for state in self._TERMINAL)
        in_flight = tracked_queued + counts.get(self.WIRE, 0)
        self.require(
            terminal + in_flight == self.tracked,
            "packet fates do not partition the packets sent",
            terminal=terminal, in_flight=in_flight, tracked=self.tracked,
        )


class ContractChecker(InvariantChecker):
    """Region transitions chain causally and callbacks never nest.

    Trace-level: for each contract, every transition's ``from_region``
    must equal the previous transition's ``to_region`` (the re-entrancy
    guard in :meth:`Contract.evaluate` exists precisely to keep this
    chain unbroken).  Object-level (registered contracts only): after
    the run no evaluation is still marked in-flight and the current
    region matches the last recorded transition.
    """

    name = "contract"
    layers = ("quo",)

    def __init__(self) -> None:
        super().__init__()
        self._last_region: Dict[str, Optional[str]] = {}

    def on_event(self, record: TraceRecord) -> None:
        if record.kind != "region.transition":
            return
        fields = record.fields or {}
        contract = fields.get("contract")
        from_region = fields.get("from_region")
        to_region = fields.get("to_region")
        if contract in self._last_region:
            expected = self._last_region[contract]
            self.require(
                from_region == expected,
                "transition chain broken (nested or lost evaluation)",
                contract=contract, from_region=from_region,
                expected=expected, to_region=to_region,
            )
        self.require(
            from_region != to_region,
            "self-transition recorded",
            contract=contract, region=to_region,
        )
        self._last_region[contract] = to_region

    def final_check(self) -> None:
        for contract in self.world.contracts:
            self.require(
                not contract._evaluating,
                "contract still mid-evaluation at teardown",
                contract=contract.name,
            )
            if contract.transitions:
                last = contract.transitions[-1].to_region
                self.require(
                    contract.current_region == last,
                    "current region disagrees with the transition log",
                    contract=contract.name,
                    current=contract.current_region, logged=last,
                )
            if contract.name in self._last_region:
                self.require(
                    self._last_region[contract.name]
                    == contract.current_region,
                    "trace stream disagrees with the contract object",
                    contract=contract.name,
                    traced=self._last_region[contract.name],
                    current=contract.current_region,
                )


class ThreadStateChecker(InvariantChecker):
    """Scheduler structural sanity: one CPU per running thread, no
    dead thread dispatchable.

    Verified on every dispatch and kill (and at teardown):

    * a CPU's current thread is in ``RUNNING`` state;
    * no thread is current on two CPUs;
    * no non-current thread claims ``RUNNING``;
    * dead threads hold no queued work, no ready episode, and are
      never current — so a stale lazy-heap entry can never get one
      dispatched.
    """

    name = "thread-state"
    layers = ("os",)

    _KINDS = frozenset(("cpu.dispatch", "thread.kill"))

    def _check_all(self) -> None:
        from repro.oskernel.thread import ThreadState

        running_on: Dict[int, str] = {}
        for cpu in self.world.cpus():
            current = cpu._current
            if current is not None:
                self.require(
                    current.state is ThreadState.RUNNING,
                    "current thread is not in RUNNING state",
                    cpu=cpu.name, thread=current.name,
                    state=current.state.value,
                )
                if current.tid in running_on:
                    self.fail(
                        "thread current on two CPUs",
                        thread=current.name, first=running_on[current.tid],
                        second=cpu.name,
                    )
                running_on[current.tid] = cpu.name
            for thread in cpu._threads:
                if thread.state is ThreadState.RUNNING:
                    self.require(
                        thread is current,
                        "RUNNING thread is not the CPU's current thread",
                        cpu=cpu.name, thread=thread.name,
                    )
                if thread.state is ThreadState.DEAD:
                    self.require(
                        thread is not current,
                        "dead thread holds the CPU",
                        cpu=cpu.name, thread=thread.name,
                    )
                    self.require(
                        not cpu._queues[thread.tid],
                        "dead thread still has queued work",
                        cpu=cpu.name, thread=thread.name,
                        pending=len(cpu._queues[thread.tid]),
                    )
                    self.require(
                        thread.tid not in cpu._ready_order,
                        "dead thread still holds a ready episode",
                        cpu=cpu.name, thread=thread.name,
                    )

    def on_event(self, record: TraceRecord) -> None:
        if record.kind in self._KINDS:
            self._check_all()

    def final_check(self) -> None:
        self._check_all()


class FluidConservationChecker(InvariantChecker):
    """The fluid engine's byte ledgers balance and its shares are sane.

    Laws, re-verified at every fluid epoch record and at teardown:

    * per flow: ``offered == served + lost`` (bytes, within relative
      slack), every ledger non-negative, ``served_share`` in [0, 1],
      and the offered rate never exceeds the flow's nominal rate;
    * per link: the same byte conservation, class shares in [0, 1],
      the served fluid aggregate within link capacity, and the hybrid
      residual exported to packet transmitters strictly positive
      (a zero residual would wedge an attached interface).
    """

    name = "fluid-conservation"
    layers = ("fluid",)

    @staticmethod
    def _balanced(offered: float, served: float, lost: float) -> bool:
        slack = max(1e-6, 1e-9 * offered)
        return abs(offered - (served + lost)) <= slack

    def _check_all(self) -> None:
        assert self.world is not None
        engine = self.world.fluid
        if engine is None:
            return
        for flow in engine.flows():
            self.require(
                min(flow.offered_bytes, flow.served_bytes,
                    flow.lost_bytes, flow.shed_bytes) >= 0.0,
                "negative fluid flow ledger", flow=flow.name,
                offered=flow.offered_bytes, served=flow.served_bytes,
                lost=flow.lost_bytes, shed=flow.shed_bytes,
            )
            self.require(
                self._balanced(flow.offered_bytes, flow.served_bytes,
                               flow.lost_bytes),
                "fluid flow bytes not conserved", flow=flow.name,
                offered=flow.offered_bytes, served=flow.served_bytes,
                lost=flow.lost_bytes,
            )
            self.require(
                -EPSILON <= flow.served_share <= 1.0 + EPSILON,
                "fluid flow share outside [0, 1]", flow=flow.name,
                share=flow.served_share,
            )
            self.require(
                flow.rate_bps <= flow.nominal_bps + EPSILON,
                "fluid flow offering above its nominal rate",
                flow=flow.name, rate=flow.rate_bps,
                nominal=flow.nominal_bps,
            )
        for link in engine.links():
            self.require(
                min(link.offered_bytes, link.served_bytes,
                    link.lost_bytes) >= 0.0,
                "negative fluid link ledger", link=link.name,
                offered=link.offered_bytes, served=link.served_bytes,
                lost=link.lost_bytes,
            )
            self.require(
                self._balanced(link.offered_bytes, link.served_bytes,
                               link.lost_bytes),
                "fluid link bytes not conserved", link=link.name,
                offered=link.offered_bytes, served=link.served_bytes,
                lost=link.lost_bytes,
            )
            for label, share in (("reserved", link.reserved_share),
                                 ("best-effort", link.be_share)):
                self.require(
                    -EPSILON <= share <= 1.0 + EPSILON,
                    f"fluid link {label} share outside [0, 1]",
                    link=link.name, share=share,
                )
            capacity = link.capacity_bps
            self.require(
                link.fluid_served_bps <= capacity * (1.0 + 1e-9),
                "fluid aggregate served above link capacity",
                link=link.name, served=link.fluid_served_bps,
                capacity=capacity,
            )
            self.require(
                link.packet_residual_bps > 0.0,
                "hybrid packet residual is not positive",
                link=link.name, residual=link.packet_residual_bps,
            )

    def on_event(self, record: TraceRecord) -> None:
        if record.kind == "epoch":
            self._check_all()

    def final_check(self) -> None:
        self._check_all()


class RoutingChecker(InvariantChecker):
    """Forwarding tables stay sane through topology changes.

    * On every ``spf.install`` record the emitting router's table is
      verified: each egress interface belongs to that router and its
      link is up (the engine must never install a route onto a link it
      just learned is dead).
    * At teardown, when the network is quiescent, the composed tables
      are walked per destination: following next hops must never
      revisit a router (no forwarding loops).  Dead ends are legal —
      an unreachable destination drops packets through the accounted
      ``unroutable`` path — but cycles would blackhole traffic with no
      accounted fate.
    * When a live :class:`~repro.net.routing.LinkStateRouting` engine
      is registered on the world, each node's installed table is also
      recomputed from its *own* LSDB and required to match — the
      distributed state and the forwarding plane may not drift apart.

    The teardown walks only run when the protocol has converged (all
    LSDBs equal, no SPF timer pending): a run that ends mid-flood may
    legally hold transient micro-loops, exactly like a real IGP.
    """

    name = "routing"
    layers = ("net",)

    def _check_installed(self, router) -> None:
        for dst, egress in router.routes.items():
            label = f"{egress.owner.name}.{egress.name}"
            self.require(
                egress.owner is router,
                "route egress belongs to another device",
                router=router.name, dst=dst, iface=label,
            )
            self.require(
                egress.link is not None and egress.link.up,
                "route installed onto a dead link",
                router=router.name, dst=dst, iface=label,
            )

    def on_event(self, record: TraceRecord) -> None:
        if record.kind != "spf.install":
            return
        network = self.world.network if self.world is not None else None
        if network is None:
            return
        name = (record.fields or {}).get("router")
        if name is None:
            return
        self._check_installed(network.device(name))

    # ------------------------------------------------------------------
    def _converged(self, routing) -> bool:
        """All LSDBs identical (by origin -> seq) and no SPF pending."""
        reference = None
        for node in routing.nodes.values():
            if node.spf_pending:
                return False
            seqs = {origin: lsa.seq for origin, lsa in node.lsdb.items()}
            if reference is None:
                reference = seqs
            elif seqs != reference:
                return False
        return True

    def _walk_tables(self, network) -> None:
        from repro.net.router import Router

        limit = len(network.routers) + 2
        for router in network.routers:
            for dst, egress in router.routes.items():
                seen = {router.name}
                iface = egress
                hops = 0
                while iface is not None:
                    link = iface.link
                    if link is None or not link.up:
                        break  # parks in a queue; not a loop
                    nxt = iface.peer.owner
                    if not isinstance(nxt, Router):
                        break  # delivered (or undeliverable) at a NIC
                    if nxt.name in seen:
                        self.fail(
                            "forwarding loop",
                            dst=dst, start=router.name, at=nxt.name,
                            cycle=sorted(seen),
                        )
                    seen.add(nxt.name)
                    iface = nxt.routes.get(dst)
                    hops += 1
                    if hops > limit:  # pragma: no cover - defensive
                        self.fail("forwarding walk did not terminate",
                                  dst=dst, start=router.name)

    def _check_lsdb_consistency(self, network, routing) -> None:
        from repro.net.routing import spf_first_hops

        for name in sorted(routing.nodes):
            node = routing.nodes[name]
            table = spf_first_hops(node.lsdb, name)
            adjacency = dict(network._adjacency[name])
            expected = {}
            for dst in sorted(table):
                if dst in routing.nodes:
                    continue
                _, first_hop = table[dst]
                egress = adjacency.get(first_hop)
                if egress is not None and egress.link is not None \
                        and egress.link.up:
                    expected[dst] = egress
            self.require(
                node.router.routes == expected,
                "installed routes drifted from the node's own LSDB",
                router=name,
                installed=sorted(node.router.routes),
                expected=sorted(expected),
            )

    def final_check(self) -> None:
        network = self.world.network if self.world is not None else None
        if network is None:
            return
        routing = getattr(self.world, "routing", None)
        if routing is None:
            self._walk_tables(network)
            return
        if self._converged(routing):
            self._walk_tables(network)
            self._check_lsdb_consistency(network, routing)


class PubSubChecker(InvariantChecker):
    """The pub-sub layer's delivery and resource laws.

    Runtime (per ``pubsub`` trace record):

    * liveliness transitions alternate — a writer may not be declared
      lost twice without a revival in between (the same-tick lease
      expiry fix's invariant, kept honest forever);
    * an ``ownership.failover`` record's new owner must be a live
      registered writer of that topic (or ``None`` when every
      candidate is dead); an owner elected for a partition the broker
      cannot reach must instead be a registered writer whose host sits
      inside that partition (lease state is unknowable across the
      cut).

    Teardown (when a :class:`~repro.pubsub.broker.Broker` is
    registered on the world):

    * **history bound** — no reader's cache ever held more samples
      than its declared depth (KEEP_LAST evicts, KEEP_ALL rejects;
      neither may silently grow);
    * **at-most-once** — a reader never delivered the same (writer,
      seq) twice, and per match delivered <= sent (reliable endpoints
      may still be draining at the horizon, but can never *exceed*
      what the writer sent);
    * **no unmatched delivery** — every writer a reader delivered
      from appears in its match table, and the reader's arrival
      counters close exactly (received = delivered + duplicates +
      stale + downsampled + filtered + unmatched);
    * **dedup bound** — once heartbeat trims are flowing, a reader's
      per-writer dedup tail stays O(window) (the state-bounding fix's
      law: no more unbounded seq sets);
    * **ownership** — the recorded owner of every topic is the
      strongest live EXCLUSIVE writer (name-ordered on ties), and
      every EXCLUSIVE reader agrees with the owner elected for *its*
      reachability partition (which is the broker's view whenever the
      reader can reach the broker).
    """

    name = "pubsub"
    layers = ("pubsub",)

    def __init__(self) -> None:
        super().__init__()
        self._last_liveliness: Dict[str, str] = {}

    def _broker(self):
        return getattr(self.world, "pubsub", None) if self.world else None

    def on_event(self, record: TraceRecord) -> None:
        self.events_seen += 1
        fields = record.fields or {}
        if record.kind in ("liveliness.lost", "liveliness.revived"):
            writer = fields.get("writer")
            state = record.kind.split(".")[1]
            self.require(
                self._last_liveliness.get(writer) != state,
                "liveliness flapped: repeated transition without "
                "the opposite in between",
                writer=writer, transition=state,
            )
            self._last_liveliness[writer] = state
        elif record.kind == "ownership.failover":
            broker = self._broker()
            new = fields.get("new")
            if broker is None or new is None:
                return
            writer = broker.writers.get(new)
            ok = (writer is not None
                  and writer.topic.name == fields.get("topic"))
            if ok:
                parts = (broker.partitions()
                         if hasattr(broker, "partitions") else None)
                pid = fields.get("partition")
                home = (parts.get(broker.host_name)
                        if parts is not None else None)
                if parts is not None and pid is not None and pid != home:
                    # Elected across a partition cut: the broker's
                    # lease monitors are not authoritative there — the
                    # writer's host must be reachable in that
                    # partition instead.
                    ok = parts.get(writer.host_name) == pid
                else:
                    ok = broker.writer_alive(new)
            self.require(
                ok,
                "ownership handed to a dead, unknown or unreachable "
                "writer",
                topic=fields.get("topic"), new=new,
            )

    def final_check(self) -> None:
        broker = self._broker()
        if broker is None:
            return
        from repro.pubsub.policies import OwnershipKind

        for reader in broker.readers.values():
            history = reader.history
            self.require(
                history.max_held <= history.depth,
                "history cache exceeded its declared depth",
                reader=reader.name, held=history.max_held,
                depth=history.depth,
            )
            self.require(
                reader.duplicates == 0,
                "a (writer, seq) sample was delivered twice",
                reader=reader.name, duplicates=reader.duplicates,
            )
            delivered_per_writer = {
                writer: ledger.delivered
                for writer, ledger in reader._seen.items()
            }
            for writer_name, count in delivered_per_writer.items():
                match = reader.matched.get(writer_name)
                self.require(
                    match is not None,
                    "samples delivered from a writer the reader never "
                    "matched",
                    reader=reader.name, writer=writer_name,
                )
                if match is not None:
                    self.require(
                        count <= match.sent,
                        "reader delivered more samples than the match "
                        "sent",
                        reader=reader.name, writer=writer_name,
                        delivered=count, sent=match.sent,
                    )
            for writer_name, ledger in reader._seen.items():
                if ledger.trims > 0:
                    from repro.pubsub.dedup import DEDUP_WINDOW
                    self.require(
                        len(ledger) <= 2 * DEDUP_WINDOW,
                        "dedup tail grew past the trimmed window bound",
                        reader=reader.name, writer=writer_name,
                        tail=len(ledger), window=DEDUP_WINDOW,
                    )
            self.require(
                reader.delivered == sum(delivered_per_writer.values()),
                "delivered count drifted from the per-writer ledgers",
                reader=reader.name, delivered=reader.delivered,
            )
            self.require(
                reader.samples_received == (
                    reader.delivered + reader.duplicates
                    + reader.stale_drops + reader.downsampled
                    + reader.ownership_filtered + reader.from_unmatched),
                "reader arrival accounting does not close",
                reader=reader.name, received=reader.samples_received,
            )

        parts = (broker.partitions()
                 if hasattr(broker, "partitions") else None)
        home = (parts.get(broker.host_name)
                if parts is not None else None)
        for topic_name, owner in broker.owners.items():
            candidates = [
                w for w in broker.writers.values()
                if w.topic.name == topic_name
                and w.qos.ownership is OwnershipKind.EXCLUSIVE
                and broker.writer_alive(w.name)
            ]
            expected = (min(candidates,
                            key=lambda w: (-w.qos.strength, w.name)).name
                        if candidates else None)
            self.require(
                owner == expected,
                "recorded owner is not the strongest live writer",
                topic=topic_name, owner=owner, expected=expected,
            )
            for reader in broker.readers.values():
                if (reader.topic.name != topic_name
                        or reader.qos.ownership
                        is not OwnershipKind.EXCLUSIVE):
                    continue
                pid = (parts.get(reader.host_name)
                       if parts is not None else None)
                if pid == home:
                    expected_view = owner
                else:
                    # The reader is currently cut off from the broker:
                    # it follows the owner elected for its own
                    # partition, not the broker's lease-driven view.
                    expected_view = broker.partition_owners.get(
                        (topic_name, pid), owner)
                self.require(
                    reader.owner == expected_view,
                    "reader's owner view drifted from its partition's "
                    "election",
                    reader=reader.name, reader_owner=reader.owner,
                    expected=expected_view,
                )


def default_suite() -> CheckSuite:
    """All built-in monitors, ready to ``install`` on a world."""
    return CheckSuite([
        TimeMonotonicityChecker(),
        QdiscAccountingChecker(),
        TokenBucketChecker(),
        ReserveLedgerChecker(),
        PacketConservationChecker(),
        ContractChecker(),
        ThreadStateChecker(),
        FluidConservationChecker(),
        RoutingChecker(),
        PubSubChecker(),
    ])
