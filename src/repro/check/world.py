"""The object graph an invariant checker inspects.

A :class:`World` is a read-only view over one simulation's live
components: the kernel, the network topology (from which queue
disciplines, links and RSVP agents are discovered), the hosts (CPUs
and reserve managers), any QuO contracts, and the admission
controller.  Checkers receive the world at :meth:`attach` time and
must treat it as *read-only* — walking its accessors never mutates
simulation state, so a checked run stays bit-identical to an
unchecked one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.sim.kernel import Kernel
    from repro.net.queues import QueueDiscipline
    from repro.net.topology import Network
    from repro.oskernel.cpu import CPU
    from repro.oskernel.host import Host
    from repro.oskernel.reserve import ReserveManager
    from repro.quo.contract import Contract

__all__ = ["World"]


class World:
    """Everything one run exposes to its invariant monitors.

    Parameters
    ----------
    kernel:
        The simulation kernel (required; time and trace source).
    network:
        Optional :class:`~repro.net.topology.Network`; qdiscs, links
        and RSVP agents are discovered from it.
    hosts:
        Hosts whose CPUs and reserve managers should be watched.
    contracts:
        QuO contracts to verify (trace-level chain checks work without
        registration; registering enables object-level final checks).
    admission:
        Optional :class:`~repro.scale.admission.AdmissionController`.
    fluid:
        Optional :class:`~repro.fluid.engine.FluidEngine` (hybrid
        scenarios); enables the fluid conservation-ledger checks.
    routing:
        Optional :class:`~repro.net.routing.LinkStateRouting`; enables
        the LSDB-vs-installed-table consistency checks.
    pubsub:
        Optional :class:`~repro.pubsub.broker.Broker`; enables the
        pub-sub delivery/history invariant checks.
    """

    def __init__(
        self,
        kernel: "Kernel",
        network: Optional["Network"] = None,
        hosts: Iterable["Host"] = (),
        contracts: Iterable["Contract"] = (),
        admission=None,
        fluid=None,
        routing=None,
        pubsub=None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.hosts: List["Host"] = list(hosts)
        self.contracts: List["Contract"] = list(contracts)
        self.admission = admission
        self.fluid = fluid
        self.routing = routing
        self.pubsub = pubsub

    # ------------------------------------------------------------------
    # Discovery walks
    # ------------------------------------------------------------------
    def qdiscs(self) -> Dict[str, "QueueDiscipline"]:
        """``"device.iface"`` label -> egress queue discipline."""
        out: Dict[str, "QueueDiscipline"] = {}
        if self.network is None:
            return out
        for link in self.network.links:
            for iface in (link.a, link.b):
                out[f"{iface.owner.name}.{iface.name}"] = iface.qdisc
        return out

    def cpus(self) -> List["CPU"]:
        return [host.cpu for host in self.hosts]

    def reserve_managers(self) -> List["ReserveManager"]:
        return [host.reserve_manager for host in self.hosts]

    def rsvp_agents(self) -> list:
        """Every RSVP agent in the topology (router and host side)."""
        agents = []
        if self.network is not None:
            for router in self.network.routers:
                if router.rsvp_agent is not None:
                    agents.append(router.rsvp_agent)
            for host in self.network.hosts:
                for nic in host.nics.values():
                    if nic.rsvp_agent is not None:
                        agents.append(nic.rsvp_agent)
        return agents

    def add_contract(self, contract: "Contract") -> None:
        self.contracts.append(contract)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<World hosts={len(self.hosts)} "
                f"net={'yes' if self.network else 'no'}>")
