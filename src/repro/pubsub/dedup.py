"""Bounded per-writer dedup ledgers (low-watermark + sparse tail).

Readers deduplicate per-writer sequence numbers before delivery.  The
original implementation kept every seq ever seen in a plain set — an
O(samples) memory cost that a long soak turns into a real leak.  The
ledger replaces it with the classic low-watermark shape:

* ``low`` — every seq ``<= low`` has been *accounted for*: either it
  was delivered (the contiguous prefix) or a heartbeat-driven trim
  declared it out of the dedup window.  ``low`` only moves forward.
* ``_tail`` — the sparse set of seqs ``> low`` seen out of contiguous
  order (gaps from loss, divisor suppression, reordering).  Whenever
  the gap at ``low + 1`` fills, the prefix collapses into ``low``.

Writers piggyback their current seq on liveliness heartbeats; the
broker fans ``trim(seq - DEDUP_WINDOW)`` out to every matched reader,
so the tail stays ``O(window + arrivals per lease)`` no matter how
long the run is — that bound is asserted by the pubsub checker and by
a 10k-sample canary test.

Trimming creates one ambiguity: a seq at or below the trim floor can
no longer be distinguished between "already delivered" and "never
seen".  The ledger reports those as **stale** (a separate verdict and
counter from **duplicate**, which is only reported when the ledger
*knows* the seq was seen).  Stale drops are an explicit term in the
reader's sample-conservation law; duplicates stay a hard zero.
"""

from __future__ import annotations

from typing import Set

__all__ = ["DedupLedger", "DEDUP_WINDOW"]

#: How far behind the writer's latest seq a reader keeps exact dedup
#: state.  One trim per heartbeat (lease/3) at fig12's 30 Hz topic
#: rate leaves plenty of slack below this.
DEDUP_WINDOW = 256


class DedupLedger:
    """Dedup state for one (reader, writer) pair."""

    __slots__ = ("low", "trim_floor", "delivered", "duplicate_drops",
                 "stale_drops", "trims", "max_tail", "_tail")

    def __init__(self) -> None:
        self.low = 0            # all seqs <= low are accounted for
        self.trim_floor = 0     # seqs <= trim_floor are ambiguous
        self.delivered = 0
        self.duplicate_drops = 0
        self.stale_drops = 0
        self.trims = 0
        self.max_tail = 0
        self._tail: Set[int] = set()

    def __len__(self) -> int:
        return len(self._tail)

    def observe(self, seq: int) -> str:
        """Classify one arrival: ``"new"``, ``"duplicate"`` or ``"stale"``.

        ``"new"`` means deliver (and is counted as delivered); the
        other two mean drop.
        """
        if seq <= self.trim_floor:
            # Below the trim floor the ledger has forgotten whether
            # this seq was seen; fail safe by dropping it as stale.
            self.stale_drops += 1
            return "stale"
        if seq <= self.low or seq in self._tail:
            self.duplicate_drops += 1
            return "duplicate"
        self._tail.add(seq)
        while (self.low + 1) in self._tail:
            self.low += 1
            self._tail.remove(self.low)
        if len(self._tail) > self.max_tail:
            self.max_tail = len(self._tail)
        self.delivered += 1
        return "new"

    def trim(self, floor: int) -> None:
        """Forget exact state for seqs ``<= floor`` (heartbeat-driven)."""
        if floor <= self.trim_floor:
            return
        self.trims += 1
        self.trim_floor = floor
        if floor > self.low:
            self.low = floor
            self._tail = {seq for seq in self._tail if seq > floor}
            while (self.low + 1) in self._tail:
                self.low += 1
                self._tail.remove(self.low)
