"""Reader-side sample caches: KEEP_LAST rings and bounded KEEP_ALL.

The history policy is a *local* resource decision (it never affects
matching): KEEP_LAST keeps the newest ``depth`` samples, silently
replacing the oldest; KEEP_ALL keeps everything up to ``depth`` as a
hard resource bound and *rejects* new samples beyond it — the DDS
RESOURCE_LIMITS behaviour, which is what makes reliable KEEP_ALL
endpoints claim reserve budget up front instead of growing without
bound.

The cache tracks its own high-water mark so the invariant checker can
assert the depth bound was never exceeded without replaying the run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

from repro.pubsub.policies import HistoryKind

__all__ = ["HistoryCache"]


class HistoryCache:
    """Bounded sample store implementing the history QoS."""

    __slots__ = ("kind", "depth", "_samples", "accepted", "replaced",
                 "rejected", "max_held")

    def __init__(self, kind: HistoryKind, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"history depth must be >= 1, got {depth}")
        self.kind = HistoryKind(kind)
        self.depth = int(depth)
        self._samples: deque = deque()
        #: Samples stored (including ones later replaced or taken).
        self.accepted = 0
        #: KEEP_LAST: oldest samples displaced by newer ones.
        self.replaced = 0
        #: KEEP_ALL: samples refused at the resource bound.
        self.rejected = 0
        #: High-water mark of the live store (checker evidence).
        self.max_held = 0

    def add(self, sample: Any) -> bool:
        """Store ``sample``; False if the resource bound refused it."""
        if len(self._samples) >= self.depth:
            if self.kind is HistoryKind.KEEP_ALL:
                self.rejected += 1
                return False
            self._samples.popleft()
            self.replaced += 1
        self._samples.append(sample)
        self.accepted += 1
        held = len(self._samples)
        if held > self.max_held:
            self.max_held = held
        return True

    def take(self) -> List[Any]:
        """Drain and return the stored samples, oldest first."""
        out = list(self._samples)
        self._samples.clear()
        return out

    def snapshot(self) -> List[Any]:
        """The stored samples, oldest first, without draining.

        TRANSIENT_LOCAL writers replay this to late-joining readers;
        the cache itself keeps serving subsequent joiners.
        """
        return list(self._samples)

    def peek_latest(self) -> Optional[Any]:
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<HistoryCache {self.kind.name} depth={self.depth} "
                f"held={len(self._samples)} max={self.max_held}>")
