"""Fig 12: the pub-sub fan-out gauntlet.

Figs 9-11 stress point-to-point streams; fig 12 asks how *declarative*
per-endpoint QoS behaves when K publishers fan M topics out to
thousands of subscribers through one bottleneck.  The population is
split like fig 10: a measured cohort of packet-simulated
:class:`~repro.pubsub.core.DataReader` endpoints (two per topic, on
the subscriber host) keeps real transports, real deadline monitors and
real ownership arbitration in the loop, while the remaining
subscribers become per-topic :class:`~repro.fluid.engine.FluidFlow`
aggregates whose byte/loss ledgers give the population tail.

Arms (each a different QoS declaration, same topology):

``best-effort``
    BEST_EFFORT / KEEP_LAST(8).  A mid-run loss burst on the
    bottleneck plus the fan-out overload: samples are simply gone, and
    past the bottleneck's capacity the measured readers collapse.
``reliable``
    RELIABLE / KEEP_ALL endpoints: matches claim reserve budget from
    the admission controller (EF on the wire) and ride the stream
    transport's bounded-retransmit machinery.  The same loss burst is
    repaired by retransmission — every measured reader ends the run
    having seen every sample exactly once.
``adaptive``
    BEST_EFFORT plus a per-reader QuO pacing contract: sustained
    deadline misses step the reader's requested rate down a
    30 -> 10 -> 2 fps ladder (send divisors 1/3/15 applied at the
    *writer*, so shed samples never cross the wire); sustained on-time
    delivery steps back up.  Under overload the readers hold the
    contracted floor instead of collapsing.
``ownership``
    EXCLUSIVE ownership, two writers per topic (primary strength 10,
    backup strength 5, lease 0.6 s).  A node crash kills the strongest
    publisher host mid-run: heartbeats stop at the first hop, the
    lease expires, and the broker fails every affected topic over to
    its backup — measured by the largest delivery gap any reader saw.
``durable``
    RELIABLE endpoints that also declare TRANSIENT_LOCAL durability.
    A late-joiner wave (one extra reader per topic) registers mid-run
    and must receive the writer's entire in-cache history, replayed
    through the same reliable reserved path, duplicate-free — then
    ride live traffic seamlessly.
``filtered``
    RELIABLE endpoints where each reader declares a content filter
    (``seq % 2 == j``): the writer evaluates the filter before send,
    so rejected samples never cross the wire or consume reserve, and
    the *filtered* stream is still delivered exactly once.
``partition``
    The ownership topology plus a broker partition: the broker's
    uplink flaps mid-run while the strongest publisher host also
    crashes.  Readers cut off from the broker elect the strongest
    reachable writer inside their own partition (instead of freezing
    on the broker's last word) and re-arbitrate on heal.

The sweep scales total subscribers past the bottleneck's capacity, so
the arms separate exactly where fan-out outgrows provisioning.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Any, Dict, List, Optional

from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.oskernel.host import Host
from repro.net.packet import HEADER_BYTES
from repro.net.queues import GuaranteedRateQueue
from repro.net.topology import Network
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fluid.engine import FluidEngine
from repro.quo.contract import Contract, Region
from repro.quo.syscond import ValueSC
from repro.scale.admission import AdmissionController
from repro.pubsub.broker import Broker, RESERVE_HEADROOM
from repro.pubsub.core import DataReader, DataWriter, Topic
from repro.pubsub.policies import (
    Durability,
    HistoryKind,
    OwnershipKind,
    QosPolicy,
    Reliability,
)

__all__ = [
    "PubSubArm", "pubsub_arms", "fig12_subscriber_counts", "ReaderRow",
    "PubSubResult", "run_pubsub_experiment", "render_fig12_pubsub",
    "expected_matches",
]

#: One sample's payload (single datagram, no fragmentation) and rate.
SAMPLE_BYTES = 1200
TOPIC_RATE_HZ = 30.0
#: On-wire rate of one writer->subscriber feed (payload + header).
WIRE_RATE_BPS = (SAMPLE_BYTES + HEADER_BYTES) * 8.0 * TOPIC_RATE_HZ

PUBLISHERS = 4
TOPICS = 8
MEASURED_PER_TOPIC = 2

ACCESS_BPS = 1e9
#: The fan-out bottleneck (router -> subscriber host).  The subscriber
#: sweep deliberately crosses this capacity.
FANOUT_BOTTLENECK_BPS = 60e6
UTILIZATION_BOUND = 0.9
BAND_CAPACITY = 200

#: Liveliness lease offered by every writer; heartbeats every lease/3.
LEASE = 0.6
#: Writers promise a sample every frame; readers tolerate three.
WRITER_DEADLINE = 1.0 / TOPIC_RATE_HZ
READER_DEADLINE = 3.0 / TOPIC_RATE_HZ
#: Latency budgets, additive along the match (0.02 + 0.03 = 0.05 s).
OFFERED_BUDGET = 0.02
REQUESTED_BUDGET = 0.03
#: KEEP_ALL resource bound: generous enough for a full run's samples.
KEEP_ALL_DEPTH = 4096
#: The 30 -> 10 -> 2 fps pacing ladder (send divisors).
ADAPT_LADDER = (1, 3, 15)
#: Publishers stop this long before the horizon so reliable
#: retransmissions drain and "delivered == sent" is exact.
DRAIN_GRACE = 0.5

OWNER_PRIMARY_STRENGTH = 10
OWNER_BACKUP_STRENGTH = 5

#: When the durable arm's late-joiner wave registers (fraction of the
#: run).  Early enough that replay + remaining live traffic drains
#: through the reserved band before the horizon, late enough that the
#: in-cache history is a real catch-up burst.
LATE_JOIN_FRACTION = 0.45
#: Late joiners per topic in the durable arm.
LATE_PER_TOPIC = 1


class PubSubArm:
    """One fig 12 arm: which QoS declaration the endpoints make."""

    def __init__(self, name: str, reliable: bool = False,
                 adaptive: bool = False, ownership: bool = False,
                 faults: bool = False, durable: bool = False,
                 filtered: bool = False, partition: bool = False) -> None:
        self.name = name
        self.reliable = bool(reliable)
        self.adaptive = bool(adaptive)
        self.ownership = bool(ownership)
        self.faults = bool(faults)
        self.durable = bool(durable)
        self.filtered = bool(filtered)
        self.partition = bool(partition)

    def __reduce__(self):
        # Constructor-call reduce (see CapacityArm): payload bytes stay
        # identical at any worker count.
        return (self.__class__, (self.name, self.reliable, self.adaptive,
                                 self.ownership, self.faults, self.durable,
                                 self.filtered, self.partition))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PubSubArm):
            return NotImplemented
        return (self.name == other.name and self.reliable == other.reliable
                and self.adaptive == other.adaptive
                and self.ownership == other.ownership
                and self.faults == other.faults
                and self.durable == other.durable
                and self.filtered == other.filtered
                and self.partition == other.partition)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PubSubArm({self.name!r}, reliable={self.reliable}, "
                f"adaptive={self.adaptive}, ownership={self.ownership}, "
                f"faults={self.faults}, durable={self.durable}, "
                f"filtered={self.filtered}, partition={self.partition})")


def pubsub_arms() -> List[PubSubArm]:
    return [
        PubSubArm("best-effort", faults=True),
        PubSubArm("reliable", reliable=True, faults=True),
        PubSubArm("adaptive", adaptive=True),
        PubSubArm("ownership", ownership=True, faults=True),
        PubSubArm("durable", reliable=True, durable=True),
        PubSubArm("filtered", reliable=True, filtered=True),
        PubSubArm("partition", ownership=True, partition=True, faults=True),
    ]


def expected_matches(arm: PubSubArm) -> int:
    """Matches the broker must form for one run of ``arm``.

    Every measured reader matches every writer on its topic (two for
    the ownership arms); the durable arm's late-joiner wave adds one
    more reader per topic.
    """
    per_reader = 2 if arm.ownership else 1
    reader_count = TOPICS * MEASURED_PER_TOPIC
    if arm.durable:
        reader_count += TOPICS * LATE_PER_TOPIC
    return reader_count * per_reader


def fig12_subscriber_counts() -> List[int]:
    """Total subscribers swept across the bottleneck's capacity.

    128 fits at full rate; 1024 is ~5x oversubscribed (only the 2 fps
    pacing floor fits); 2048 is ~10x oversubscribed, the largest
    population whose contracted floor still fits the bottleneck — past
    it no declaration can hold the floor, so the sweep stops where the
    adaptive arm's promise is still physically meaningful.
    """
    return [128, 1024, 2048]


#: One measured reader's ledgers; plain data for stable payloads.
ReaderRow = namedtuple("ReaderRow", [
    "name",
    "topic",
    "writers",            # matched writer count
    "sent_to",            # samples writers pushed toward this reader
    "delivered",          # accepted exactly-once deliveries
    "duplicates",
    "filtered",           # dropped by EXCLUSIVE ownership arbitration
    "unmatched",          # arrived without an active match (must be 0)
    "deadline_misses",
    "budget_violations",
    "history_rejected",   # KEEP_ALL resource-bound refusals
    "fps",                # delivered / publish window
    "mean_latency",
    "max_gap",            # largest inter-arrival gap (failover probe)
    "divisor",            # final pacing divisor (1 unless adaptive)
    "replayed",           # durable samples replayed at match time
    "downsampled",        # dropped locally while pacing ahead of grant
    "stale",              # dropped below a writer's dedup trim floor
    "joined_at",          # registration time (0.0 for the initial cohort)
])


class PacingQosket:
    """Reader-side QuO contract driving the 30 -> 10 -> 2 fps ladder.

    The reader's deadline monitor feeds a pacing *level* system
    condition; the contract's regions (full / degraded / severe) apply
    the matching send divisor at the writer through the broker.  The
    level goes up after two consecutive paced misses and comes back
    down only after ``PATIENCE`` consecutive clean checks, so the
    ladder cannot flap — and "clean" is judged against the *paced*
    inter-arrival expectation, not the raw deadline, so a reader
    parked at 2 fps can still observe that congestion cleared.
    """

    MISS_STREAK = 2
    PATIENCE = 10
    #: Clean means an arrival within this many paced periods.
    PACE_SLACK = 2.5

    def __init__(self, kernel: Kernel, reader: DataReader) -> None:
        self.kernel = kernel
        self.reader = reader
        self.level = 0
        self._ok_streak = 0
        self._miss_streak = 0
        self.level_sc = ValueSC(kernel, f"{reader.name}.pace", initial=0.0)
        self.contract = Contract(kernel, f"pace:{reader.name}", regions=[
            Region("severe", lambda s: s[f"{reader.name}.pace"] >= 2,
                   on_enter=self._apply),
            Region("degraded", lambda s: s[f"{reader.name}.pace"] >= 1,
                   on_enter=self._apply),
            Region("full", on_enter=self._apply),
        ])
        self.contract.attach(self.level_sc)
        self.contract.evaluate()
        reader.on_deadline_check = self._on_check

    def _apply(self, contract: Contract) -> None:
        self.reader.request_divisor(ADAPT_LADDER[self.level])

    def _on_check(self, reader: DataReader, missed: bool) -> None:
        period = ADAPT_LADDER[self.level] / TOPIC_RATE_HZ
        threshold = max(reader.qos.deadline or 0.0, self.PACE_SLACK * period)
        stale = (reader.last_arrival is None
                 or self.kernel.now - reader.last_arrival > threshold)
        if stale:
            self._ok_streak = 0
            self._miss_streak += 1
            if self._miss_streak >= self.MISS_STREAK and self.level < 2:
                self.level += 1
                self._miss_streak = 0
                self.level_sc.set(float(self.level))
        else:
            self._miss_streak = 0
            self._ok_streak += 1
            if self._ok_streak >= self.PATIENCE and self.level > 0:
                self.level -= 1
                self._ok_streak = 0
                self.level_sc.set(float(self.level))


class PubSubResult:
    """One (arm, subscribers) fig 12 point; pickles without live actors."""

    def __init__(self, arm: PubSubArm, subscribers: int,
                 duration: float) -> None:
        self.arm = arm
        self.subscribers = int(subscribers)
        self.duration = float(duration)
        self.lease = LEASE
        self.topics = TOPICS
        self.publishers = PUBLISHERS
        self.reader_rows: List[ReaderRow] = []
        self.matches_formed = 0
        self.matches_rejected = 0
        self.ownership_changes = 0
        self.liveliness_lost = 0
        self.liveliness_revived = 0
        self.grants = 0
        self.grant_denials = 0
        self.heartbeats_sent = 0
        self.contract_transitions = 0
        #: Durable samples replayed to late joiners (broker total).
        self.replays = 0
        #: Sends skipped by reader content filters (writer total).
        self.sends_filtered = 0
        #: Owner elections decided for partitions without the broker.
        self.partition_elections = 0
        self.divisor_grants = 0
        #: Fluid tail: per-subscriber delivered fps and loss fraction.
        self.tail_count = 0
        self.tail_per_sub_fps = 0.0
        self.tail_loss_fraction = 0.0
        self.events_executed = 0
        self.fluid_epochs = 0
        # Live actors, nulled before pickling.
        self.broker: Optional[Broker] = None
        self.engine: Optional[FluidEngine] = None
        self.writers: Optional[List[DataWriter]] = None
        self.readers: Optional[List[DataReader]] = None
        self.qoskets: Optional[List[PacingQosket]] = None

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["broker"] = None
        state["engine"] = None
        state["writers"] = None
        state["readers"] = None
        state["qoskets"] = None
        return state

    # -- derived views --------------------------------------------------
    @property
    def mean_fps(self) -> float:
        rows = self.reader_rows
        return sum(r.fps for r in rows) / len(rows) if rows else 0.0

    @property
    def min_fps(self) -> float:
        return min((r.fps for r in self.reader_rows), default=0.0)

    @property
    def delivery_fraction(self) -> float:
        """Accepted deliveries / samples pushed (ownership filtering
        and loss both lower it)."""
        sent = sum(r.sent_to for r in self.reader_rows)
        got = sum(r.delivered for r in self.reader_rows)
        return got / sent if sent else 0.0

    @property
    def exactly_once(self) -> bool:
        """Every measured reader saw every pushed sample exactly once."""
        return all(r.delivered == r.sent_to and r.duplicates == 0
                   for r in self.reader_rows)

    @property
    def failover_gap(self) -> float:
        """Largest delivery gap any measured reader observed."""
        return max((r.max_gap for r in self.reader_rows), default=0.0)

    @property
    def late_rows(self) -> List[ReaderRow]:
        """Rows for the durable arm's late-joiner wave."""
        return [r for r in self.reader_rows if r.joined_at > 0.0]

    @property
    def total_deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.reader_rows)


def _arm_policies(arm: PubSubArm, strength: int = 0):
    """(writer QoS, reader QoS) for one arm."""
    reliability = (Reliability.RELIABLE if arm.reliable
                   else Reliability.BEST_EFFORT)
    history = HistoryKind.KEEP_ALL if arm.reliable else HistoryKind.KEEP_LAST
    depth = KEEP_ALL_DEPTH if arm.reliable else 8
    ownership = (OwnershipKind.EXCLUSIVE if arm.ownership
                 else OwnershipKind.SHARED)
    durability = (Durability.TRANSIENT_LOCAL if arm.durable
                  else Durability.VOLATILE)
    offered = QosPolicy(
        reliability=reliability, history=history, depth=depth,
        deadline=WRITER_DEADLINE, latency_budget=OFFERED_BUDGET,
        lease=LEASE, ownership=ownership, strength=strength,
        durability=durability)
    requested = QosPolicy(
        reliability=reliability, history=history, depth=depth,
        deadline=READER_DEADLINE, latency_budget=REQUESTED_BUDGET,
        lease=None, ownership=ownership, durability=durability)
    return offered, requested


def _fault_plan(arm: PubSubArm, duration: float) -> List[Dict]:
    if not arm.faults:
        return []
    if arm.partition:
        # Cut the broker's uplink (partitioning control from data),
        # then crash the strongest publisher host *inside* the window:
        # the readers' partition must elect the reachable backups on
        # its own, and everything re-arbitrates after the heal.
        return [
            {"kind": "link_flap", "link": ["brk", "router"],
             "at": 0.40 * duration, "duration": 0.25 * duration},
            {"kind": "node_crash", "node": "pub0",
             "at": 0.45 * duration, "duration": 0.25 * duration},
        ]
    if arm.ownership:
        # Kill the strongest publisher host mid-run; restore later so
        # the lease-revival (and ownership preemption) path runs too.
        return [{"kind": "node_crash", "node": "pub0",
                 "at": 0.55 * duration, "duration": 0.25 * duration}]
    # Correlated loss on the fan-out bottleneck: best-effort samples
    # are gone, reliable ones come back via retransmission.
    return [{"kind": "loss_burst", "link": ["router", "sub"],
             "at": 0.3 * duration, "duration": 1.0, "loss": 0.35}]


def run_pubsub_experiment(
    arm: PubSubArm,
    subscribers: int = 1024,
    duration: float = 8.0,
    seed: int = 1,
    bottleneck_bps: float = FANOUT_BOTTLENECK_BPS,
    fault_plan: Optional[List[Dict[str, Any]]] = None,
    checks=None,
) -> PubSubResult:
    """Run one fig 12 arm at one total-subscriber count.

    ``fault_plan`` overrides the arm's canonical plan (the soak
    harness injects random faults this way); pass ``[]`` for a
    fault-free run of a faulted arm.
    """
    measured_total = TOPICS * MEASURED_PER_TOPIC
    if subscribers < measured_total:
        raise ValueError(
            f"need at least {measured_total} subscribers, got {subscribers}")
    kernel = Kernel()
    rng = RngRegistry(seed=seed)
    interval = 1.0 / TOPIC_RATE_HZ

    # --- topology: K publisher hosts + broker + subscriber host around
    # one router; the router->sub link is the fan-out bottleneck.
    net = Network(kernel, default_bandwidth_bps=ACCESS_BPS)
    host_names = [f"pub{i}" for i in range(PUBLISHERS)] + ["brk", "sub"]
    hosts = {name: Host(kernel, name) for name in host_names}
    for host in hosts.values():
        net.attach_host(host)
    router = net.add_router("router")

    def q(name: str) -> GuaranteedRateQueue:
        return GuaranteedRateQueue(kernel, band_capacity=BAND_CAPACITY,
                                   name=name)

    for name in host_names[:-1]:
        net.link(name, router, bandwidth_bps=ACCESS_BPS,
                 qdisc_a=q(f"{name}-out"), qdisc_b=q(f"rtr-to-{name}"))
    bottleneck = net.link(router, "sub", bandwidth_bps=bottleneck_bps,
                          qdisc_a=q("bottleneck"), qdisc_b=q("sub-out"))
    net.compute_routes()
    net.enable_intserv(utilization_bound=UTILIZATION_BOUND)

    controller = AdmissionController.from_network(
        net, link_bound=UTILIZATION_BOUND)
    broker = Broker(kernel, nic=net.nic_of("brk"), admission=controller,
                    network=net)

    # --- endpoints: topic t_i published from pub{i%K}; ownership arm
    # adds a weaker backup writer on the next host over.
    topics = [Topic(f"t{i}", SAMPLE_BYTES, TOPIC_RATE_HZ)
              for i in range(TOPICS)]
    writers: List[DataWriter] = []
    for i, topic in enumerate(topics):
        offered, _ = _arm_policies(arm, strength=OWNER_PRIMARY_STRENGTH)
        writer = DataWriter(kernel, topic, offered, f"w{i}.p",
                            nic=net.nic_of(f"pub{i % PUBLISHERS}"))
        broker.register_writer(writer)
        writers.append(writer)
        if arm.ownership:
            offered_b, _ = _arm_policies(
                arm, strength=OWNER_BACKUP_STRENGTH)
            backup = DataWriter(
                kernel, topic, offered_b, f"w{i}.b",
                nic=net.nic_of(f"pub{(i + 1) % PUBLISHERS}"))
            broker.register_writer(backup)
            writers.append(backup)

    readers: List[DataReader] = []
    qoskets: List[PacingQosket] = []
    joined_at: Dict[str, float] = {}
    for i, topic in enumerate(topics):
        for j in range(MEASURED_PER_TOPIC):
            _, requested = _arm_policies(arm)
            # Content filters split each topic's seq stream between
            # its two measured readers (writer-side evaluation).
            filter_expr = f"seq % 2 == {j % 2}" if arm.filtered else None
            reader = DataReader(kernel, topic, requested, f"r{i}.{j}",
                                nic=net.nic_of("sub"),
                                filter_expr=filter_expr)
            if arm.adaptive:
                qoskets.append(PacingQosket(kernel, reader))
            broker.register_reader(reader)
            readers.append(reader)

    # --- durable arm: a late-joiner wave registers mid-run and must
    # catch up from the writers' TRANSIENT_LOCAL caches.  (The wave is
    # deliberately absent from the fluid mirror below: its reserved
    # rate is a small constant on top of an already-booked band.)
    late_join_time = LATE_JOIN_FRACTION * duration

    def join_late() -> None:
        for i, topic in enumerate(topics):
            for j in range(LATE_PER_TOPIC):
                _, requested = _arm_policies(arm)
                reader = DataReader(kernel, topic, requested,
                                    f"r{i}.late{j}", nic=net.nic_of("sub"))
                joined_at[reader.name] = kernel.now
                broker.register_reader(reader)
                readers.append(reader)

    if arm.durable:
        kernel.schedule(late_join_time, join_late)

    # --- fluid tail: the remaining subscribers as per-topic aggregates
    engine = FluidEngine(kernel, quantum=1e-3)
    fl_bott = engine.attach_interface(
        "router->sub", bottleneck.a,
        queue_bytes=BAND_CAPACITY * (SAMPLE_BYTES + HEADER_BYTES))
    for reader in readers:
        for match in reader.matched.values():
            # Reserved matches booked headroom above nominal (retransmit
            # slack); mirror the same rate into the fluid share math.
            rate = (RESERVE_HEADROOM * WIRE_RATE_BPS if match.reserved
                    else WIRE_RATE_BPS)
            fl_bott.register_packet_load(rate, reserved=match.reserved)
    tail_total = subscribers - measured_total
    tail_counts = [tail_total // TOPICS] * TOPICS
    for i in range(tail_total % TOPICS):
        tail_counts[i] += 1
    # The tail adapts whenever the arm does; the ownership arm's tail
    # also adapts so the failover gap probes arbitration, not queueing.
    tail_adaptive = arm.adaptive or arm.ownership
    for topic, count in zip(topics, tail_counts):
        if count <= 0:
            continue
        engine.add_flow(f"tail:{topic.name}", count * WIRE_RATE_BPS,
                        [fl_bott], adaptive=tail_adaptive,
                        deadline=READER_DEADLINE)

    # --- faults -------------------------------------------------------
    plan = (fault_plan if fault_plan is not None
            else _fault_plan(arm, duration))
    if plan:
        injector = FaultInjector(kernel, network=net,
                                 rng=rng.stream("fault-injector"))
        injector.install(FaultPlan.from_dicts(plan))

    # --- publish loops: staggered rearm timers, stopped DRAIN_GRACE
    # before the horizon so in-flight retransmissions drain.
    publish_until = duration - DRAIN_GRACE

    def make_publisher(writer: DataWriter):
        def tick() -> None:
            if kernel.now > publish_until:
                return
            writer.write(writer.seq)
            kernel.schedule(interval, tick)
        return tick

    for k, writer in enumerate(writers):
        kernel.schedule(k * interval / max(1, len(writers)),
                        make_publisher(writer))

    def stop_monitors() -> None:
        # Publishing is over: freeze the deadline monitors (and with
        # them the pacing ladders) so the drain window cannot register
        # spurious misses.
        for reader in readers:
            reader.stop_deadline_monitor()

    kernel.schedule(publish_until, stop_monitors)

    if checks is not None:
        from repro.check.world import World
        checks.install(World(
            kernel, network=net, hosts=list(hosts.values()),
            contracts=[qk.contract for qk in qoskets],
            admission=controller, fluid=engine, pubsub=broker))

    kernel.run(until=duration)
    engine.finalize()
    if checks is not None:
        checks.final_check()

    # --- capture ------------------------------------------------------
    result = PubSubResult(arm, subscribers, duration)
    window = publish_until
    for reader in readers:
        divisor = max((m.divisor for m in reader.matched.values()),
                      default=1)
        result.reader_rows.append(ReaderRow(
            name=reader.name,
            topic=reader.topic.name,
            writers=len(reader.matched),
            sent_to=sum(m.sent for m in reader.matched.values()),
            delivered=reader.delivered,
            duplicates=reader.duplicates,
            filtered=reader.ownership_filtered,
            unmatched=reader.from_unmatched,
            deadline_misses=reader.deadline_misses,
            budget_violations=reader.budget_violations,
            history_rejected=reader.history.rejected,
            fps=reader.delivered / window if window > 0 else 0.0,
            mean_latency=reader.mean_latency,
            max_gap=reader.max_gap,
            divisor=divisor,
            replayed=sum(m.replayed for m in reader.matched.values()),
            downsampled=reader.downsampled,
            stale=reader.stale_drops,
            joined_at=joined_at.get(reader.name, 0.0),
        ))
    result.matches_formed = broker.matches_formed
    result.matches_rejected = broker.matches_rejected
    result.ownership_changes = broker.ownership_changes
    result.replays = broker.replays
    result.partition_elections = broker.partition_elections
    result.divisor_grants = broker.divisor_grants
    result.sends_filtered = sum(w.sends_filtered for w in writers)
    for monitor in broker.monitors.values():
        result.liveliness_lost += monitor.lost_count
        result.liveliness_revived += sum(
            1 for kind, _ in monitor.transitions if kind == "revived")
    result.grants = broker.grants
    result.grant_denials = broker.grant_denials
    result.heartbeats_sent = sum(w.heartbeats_sent for w in writers)
    result.contract_transitions = sum(
        len(qk.contract.transitions) for qk in qoskets)

    wire_sample_bytes = WIRE_RATE_BPS / 8.0 / TOPIC_RATE_HZ
    result.tail_count = tail_total
    offered = served = lost = 0.0
    for flow in engine.flows():
        offered += flow.offered_bytes
        served += flow.served_bytes
        lost += flow.lost_bytes
    if tail_total > 0 and duration > 0:
        result.tail_per_sub_fps = (
            served / wire_sample_bytes / duration / tail_total)
    result.tail_loss_fraction = lost / offered if offered > 0 else 0.0
    result.events_executed = kernel.events_executed
    result.fluid_epochs = engine.epochs
    engine.close()
    broker.close()
    result.broker = broker
    result.engine = engine
    result.writers = writers
    result.readers = readers
    result.qoskets = qoskets
    return result


# ----------------------------------------------------------------------
# Rendering (shared by the CLI and the fig12 benchmark)
# ----------------------------------------------------------------------
def render_fig12_pubsub(sweeps: "Dict[str, List[PubSubResult]]") -> str:
    """One table per arm over the subscriber sweep + failover recap."""
    from repro.experiments.reporting import render_table

    sections = []
    ownership_results: List[PubSubResult] = []
    durable_results: List[PubSubResult] = []
    filtered_results: List[PubSubResult] = []
    partition_results: List[PubSubResult] = []
    for arm_name, results in sweeps.items():
        rows = []
        for result in results:
            rows.append((
                result.subscribers,
                result.matches_formed,
                f"{result.mean_fps:.2f}",
                f"{result.min_fps:.2f}",
                f"{result.delivery_fraction * 100:.1f}%",
                result.total_deadline_misses,
                "yes" if result.exactly_once else "no",
                f"{result.tail_per_sub_fps:.2f}",
                f"{result.tail_loss_fraction * 100:.1f}%",
                f"{result.failover_gap:.3f}",
                result.events_executed,
            ))
            if arm_name == "ownership":
                ownership_results.append(result)
            elif arm_name == "durable":
                durable_results.append(result)
            elif arm_name == "filtered":
                filtered_results.append(result)
            elif arm_name == "partition":
                partition_results.append(result)
        table = render_table(
            ("subs", "matches", "fps", "min fps", "delivery",
             "misses", "1x", "tail fps", "tail loss", "max gap", "events"),
            rows)
        sections.append(f"Fig 12 — pub-sub fan-out gauntlet — {arm_name}\n"
                        f"{table}")

    if ownership_results:
        lines = ["ownership failover (lease "
                 f"{ownership_results[0].lease:g} s; gap = largest "
                 "delivery hole at any measured reader):"]
        for result in ownership_results:
            lines.append(
                f"  subs={result.subscribers:>5}: "
                f"lost={result.liveliness_lost} "
                f"revived={result.liveliness_revived} "
                f"handoffs={result.ownership_changes} "
                f"gap={result.failover_gap:.3f} s")
        sections.append("\n".join(lines))

    if durable_results:
        lines = ["durable late-joiner catch-up (TRANSIENT_LOCAL replay "
                 "from the writer history cache at match time):"]
        for result in durable_results:
            late = result.late_rows
            replayed = sum(r.replayed for r in late)
            dup = sum(r.duplicates for r in late)
            complete = all(r.delivered == r.sent_to for r in late)
            lines.append(
                f"  subs={result.subscribers:>5}: "
                f"late_readers={len(late)} "
                f"replayed={replayed} duplicates={dup} "
                f"complete={'yes' if complete else 'no'}")
        sections.append("\n".join(lines))

    if filtered_results:
        lines = ["content filters (seq % 2 == j, evaluated writer-side; "
                 "filtered samples never cross the wire):"]
        for result in filtered_results:
            lines.append(
                f"  subs={result.subscribers:>5}: "
                f"sends_filtered={result.sends_filtered} "
                f"mean_fps={result.mean_fps:.2f} "
                f"1x={'yes' if result.exactly_once else 'no'}")
        sections.append("\n".join(lines))

    if partition_results:
        lines = ["partition/heal cycle (broker uplink flap + primary "
                 "crash; readers elect reachable writers per partition):"]
        for result in partition_results:
            lines.append(
                f"  subs={result.subscribers:>5}: "
                f"elections={result.partition_elections} "
                f"handoffs={result.ownership_changes} "
                f"lost={result.liveliness_lost} "
                f"revived={result.liveliness_revived} "
                f"gap={result.failover_gap:.3f} s")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
