"""Liveliness lease monitoring with writer-death detection.

The broker runs one :class:`LivelinessMonitor` per leased writer.
Writers assert liveliness with periodic heartbeats; when a full lease
elapses without one, the monitor declares the writer dead (one
``liveliness-lost`` transition) and the broker fails ownership over to
the next-strongest live writer.

Two-phase expiry — the same-tick edge case
------------------------------------------

Heartbeats arrive as network deliveries, and with coalesced timers a
heartbeat can land at *exactly* the simulated instant the lease
expires.  Kernel ties fire in schedule order, and the expiry timer was
scheduled a whole lease ago, so a naive monitor would run first, see a
stale ``last_heard`` and declare the writer dead — then process the
same-tick heartbeat, revive it, and later declare it dead *again*:
two lost transitions (a flap) for one actual death.

The monitor therefore never declares loss directly from the lease
timer.  When the deadline looks passed it schedules a zero-delay
*confirmation* event: zero-delay events sort after every already-queued
event at the same timestamp, so any heartbeat sharing the tick is
processed first.  The confirmation re-reads ``last_heard`` — if the
same-tick heartbeat arrived, the monitor simply re-arms; a writer that
genuinely went quiet gets exactly one lost transition, one lease after
its final heartbeat.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.kernel import Kernel, ScheduledEvent

__all__ = ["LivelinessMonitor"]


class LivelinessMonitor:
    """Watch one writer's lease; fire callbacks on state transitions."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        lease: float,
        on_lost: Optional[Callable[["LivelinessMonitor"], None]] = None,
        on_revived: Optional[Callable[["LivelinessMonitor"], None]] = None,
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        self.kernel = kernel
        self.name = name
        self.lease = float(lease)
        self.on_lost = on_lost
        self.on_revived = on_revived
        self.alive = True
        self.last_heard = kernel.now
        self.heartbeats = 0
        #: ("lost" | "revived", time) history, in order (test evidence).
        self.transitions: List[Tuple[str, float]] = []
        self._expiry: Optional[ScheduledEvent] = None
        self._stopped = False
        self._arm(self.last_heard + self.lease)

    # ------------------------------------------------------------------
    @property
    def lost_count(self) -> int:
        return sum(1 for kind, _ in self.transitions if kind == "lost")

    def heartbeat(self) -> None:
        """The writer asserted liveliness (heartbeat received)."""
        if self._stopped:
            return
        self.last_heard = self.kernel.now
        self.heartbeats += 1
        if not self.alive:
            self.alive = True
            self.transitions.append(("revived", self.kernel.now))
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant("pubsub", "liveliness.revived",
                               writer=self.name)
            if self.on_revived is not None:
                self.on_revived(self)
            self._arm(self.last_heard + self.lease)

    def stop(self) -> None:
        """Detach: pending timers become no-ops."""
        self._stopped = True
        if self._expiry is not None:
            self._expiry.cancel()
            self._expiry = None

    # ------------------------------------------------------------------
    # Lease timer (two-phase: check, then same-tick confirmation)
    # ------------------------------------------------------------------
    def _arm(self, deadline: float) -> None:
        if self._expiry is not None:
            self._expiry.cancel()
        self._expiry = self.kernel.schedule_at(deadline, self._on_expiry)

    def _on_expiry(self) -> None:
        self._expiry = None
        if self._stopped or not self.alive:
            return
        deadline = self.last_heard + self.lease
        if self.kernel.now < deadline:
            # A heartbeat advanced the deadline since this timer was
            # armed; chase the new one.
            self._arm(deadline)
            return
        # Deadline apparently passed — but a heartbeat may still be
        # queued at this very timestamp (it was scheduled before this
        # long-armed timer, so it fires after us).  Defer the verdict
        # behind the rest of the tick.
        self.kernel.schedule(0.0, self._confirm_expiry, self.last_heard)

    def _confirm_expiry(self, heard_at_check: float) -> None:
        if self._stopped or not self.alive:
            return
        if self.last_heard > heard_at_check:
            # A same-tick heartbeat beat us to it: still alive.
            self._arm(self.last_heard + self.lease)
            return
        self.alive = False
        self.transitions.append(("lost", self.kernel.now))
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("pubsub", "liveliness.lost", writer=self.name,
                           last_heard=self.last_heard, lease=self.lease)
        if self.on_lost is not None:
            self.on_lost(self)

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "lost"
        return (f"<LivelinessMonitor {self.name} {state} "
                f"lease={self.lease:g} heard={self.last_heard:g}>")
