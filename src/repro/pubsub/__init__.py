"""DDS-style declarative QoS pub-sub on the ORB/transport stack.

The paper's A/V streaming study is point-to-point; modern DRE
middleware is topic-based publish-subscribe with *declarative*
per-endpoint QoS.  This package grows that layer on the existing
simulation stack:

* :mod:`repro.pubsub.policies` — the QoS policy vocabulary
  (reliability, history, deadline, latency budget, liveliness lease,
  ownership strength);
* :mod:`repro.pubsub.matching` — pure, table-driven RxO
  (offered-vs-requested) compatibility matching;
* :mod:`repro.pubsub.history` — KEEP_LAST ring / resource-bounded
  KEEP_ALL sample caches (also the TRANSIENT_LOCAL writer cache);
* :mod:`repro.pubsub.filters` — content-filtered topics (a small safe
  expression evaluator run writer-side before send);
* :mod:`repro.pubsub.dedup` — bounded per-writer dedup ledgers
  (low-watermark + sparse tail, trimmed by heartbeat piggybacks);
* :mod:`repro.pubsub.liveliness` — lease monitoring with writer-death
  detection (two-phase expiry, so a heartbeat landing in the same
  kernel tick as the lease edge cannot flap the liveliness state);
* :mod:`repro.pubsub.core` — :class:`Topic`, :class:`DataWriter`,
  :class:`DataReader` over the datagram/stream transports;
* :mod:`repro.pubsub.broker` — the discovery/matching broker with
  deterministic ownership-strength failover and admission-controller
  integration;
* :mod:`repro.pubsub.fig12` — the fan-out gauntlet experiment
  (K publishers x M topics x thousands of subscribers).
"""

from repro.pubsub.policies import (
    Durability,
    HistoryKind,
    OwnershipKind,
    QosPolicy,
    Reliability,
)
from repro.pubsub.matching import MatchResult, rxo_check
from repro.pubsub.history import HistoryCache
from repro.pubsub.filters import ContentFilter
from repro.pubsub.dedup import DedupLedger, DEDUP_WINDOW
from repro.pubsub.liveliness import LivelinessMonitor
from repro.pubsub.core import DataReader, DataWriter, Sample, Topic
from repro.pubsub.broker import Broker

__all__ = [
    "Reliability",
    "HistoryKind",
    "OwnershipKind",
    "Durability",
    "QosPolicy",
    "ContentFilter",
    "DedupLedger",
    "DEDUP_WINDOW",
    "MatchResult",
    "rxo_check",
    "HistoryCache",
    "LivelinessMonitor",
    "Topic",
    "Sample",
    "DataWriter",
    "DataReader",
    "Broker",
]
