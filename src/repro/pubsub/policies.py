"""The declarative QoS policy vocabulary (DDS-style).

A :class:`QosPolicy` is a plain value object describing what one
endpoint *offers* (writers) or *requests* (readers):

* **reliability** — BEST_EFFORT datagrams vs RELIABLE delivery over
  the stream transport's RTO/retransmit machinery;
* **history** — KEEP_LAST (a depth-N ring) vs KEEP_ALL (bounded by
  ``depth`` as a resource limit rather than a replacement policy);
* **deadline** — maximum expected inter-sample period; the reader
  monitors it and publishes missed-deadline events;
* **latency_budget** — slack the endpoint grants the delivery path;
  budgets are *additive along a match* (writer slack + reader slack);
* **lease** — liveliness lease duration; a writer whose heartbeats go
  quiet for one lease is declared dead and loses ownership;
* **ownership/strength** — SHARED lets every matched writer deliver;
  EXCLUSIVE delivers only the strongest *live* writer per topic, with
  deterministic failover down the strength order;
* **durability** — VOLATILE samples exist only in flight;
  TRANSIENT_LOCAL writers keep a history-bounded cache of what they
  published and replay it to late-joining readers at match time.

``None`` for ``deadline`` or ``lease`` means *infinite* (unmonitored),
matching the DDS defaults.  Policies travel through
:class:`~repro.experiments.runner.RunSpec` params as plain dicts
(:meth:`QosPolicy.to_params` / :meth:`QosPolicy.from_params`) and
pickle via a constructor call so payload bytes are identical at any
worker count.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Dict, Optional

__all__ = ["Reliability", "HistoryKind", "OwnershipKind", "Durability",
           "QosPolicy"]


class Reliability(IntEnum):
    """Delivery guarantee; RELIABLE offers strictly more."""

    BEST_EFFORT = 0
    RELIABLE = 1


class HistoryKind(IntEnum):
    """What the reader cache does when it is full."""

    KEEP_LAST = 0
    KEEP_ALL = 1


class OwnershipKind(IntEnum):
    """Who may update a topic instance."""

    SHARED = 0
    EXCLUSIVE = 1


class Durability(IntEnum):
    """Do samples outlive their send; TRANSIENT_LOCAL offers more."""

    VOLATILE = 0
    TRANSIENT_LOCAL = 1


class QosPolicy:
    """One endpoint's declared QoS (immutable value object)."""

    __slots__ = ("reliability", "history", "depth", "deadline",
                 "latency_budget", "lease", "ownership", "strength",
                 "durability")

    def __init__(
        self,
        reliability: Reliability = Reliability.BEST_EFFORT,
        history: HistoryKind = HistoryKind.KEEP_LAST,
        depth: int = 8,
        deadline: Optional[float] = None,
        latency_budget: float = 0.0,
        lease: Optional[float] = None,
        ownership: OwnershipKind = OwnershipKind.SHARED,
        strength: int = 0,
        durability: Durability = Durability.VOLATILE,
    ) -> None:
        reliability = Reliability(reliability)
        history = HistoryKind(history)
        ownership = OwnershipKind(ownership)
        durability = Durability(durability)
        if depth < 1:
            raise ValueError(f"history depth must be >= 1, got {depth}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if latency_budget < 0:
            raise ValueError(
                f"latency budget must be >= 0, got {latency_budget}")
        if lease is not None and lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        object.__setattr__(self, "reliability", reliability)
        object.__setattr__(self, "history", history)
        object.__setattr__(self, "depth", int(depth))
        object.__setattr__(
            self, "deadline", None if deadline is None else float(deadline))
        object.__setattr__(self, "latency_budget", float(latency_budget))
        object.__setattr__(
            self, "lease", None if lease is None else float(lease))
        object.__setattr__(self, "ownership", ownership)
        object.__setattr__(self, "strength", int(strength))
        object.__setattr__(self, "durability", durability)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"QosPolicy is immutable (tried to set {name!r})")

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self.reliability, self.history, self.depth, self.deadline,
                self.latency_budget, self.lease, self.ownership,
                self.strength, self.durability)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QosPolicy):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __reduce__(self):
        # Constructor-call reduce (see CapacityArm): payload bytes stay
        # identical at any worker count.
        return (self.__class__, self._key())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"QosPolicy({self.reliability.name}, {self.history.name}"
                f"(depth={self.depth}), deadline={self.deadline}, "
                f"budget={self.latency_budget}, lease={self.lease}, "
                f"{self.ownership.name}(strength={self.strength}), "
                f"{self.durability.name})")

    # ------------------------------------------------------------------
    # RunSpec travel
    # ------------------------------------------------------------------
    def to_params(self) -> Dict[str, Any]:
        """JSON-able constructor kwargs (for RunSpec params)."""
        return {
            "reliability": int(self.reliability),
            "history": int(self.history),
            "depth": self.depth,
            "deadline": self.deadline,
            "latency_budget": self.latency_budget,
            "lease": self.lease,
            "ownership": int(self.ownership),
            "strength": self.strength,
            "durability": int(self.durability),
        }

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "QosPolicy":
        return cls(**params)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "QosPolicy":
        """A copy with the given fields replaced."""
        params = self.to_params()
        params.update(changes)
        return QosPolicy.from_params(params)
