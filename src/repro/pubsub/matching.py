"""RxO (offered-vs-requested) compatibility matching.

A writer *offers* a :class:`~repro.pubsub.policies.QosPolicy`; a
reader *requests* one.  A match forms only if every RxO policy is
compatible, following the DDS lattice laws:

* **reliability** — offered must be at least as strong as requested
  (RELIABLE ⊒ BEST_EFFORT).  Enumerated in
  :data:`RELIABILITY_COMPAT`.
* **durability** — offered must be at least as strong as requested
  (TRANSIENT_LOCAL ⊒ VOLATILE): a reader asking for late-joiner
  catch-up needs a writer that actually caches what it published.
  Enumerated in :data:`DURABILITY_COMPAT`.
* **ownership** — kinds must be *equal*; a reader expecting exclusive
  arbitration cannot consume a shared topic and vice versa.
  Enumerated in :data:`OWNERSHIP_COMPAT`.
* **deadline** — the writer must promise updates at least as often as
  the reader expects: offered period <= requested period, with
  ``None`` = infinite.
* **liveliness lease** — the writer must assert liveliness at least
  as often as the reader requires: offered lease <= requested lease,
  ``None`` = infinite.
* **latency budget** — never blocks a match; the budgets are
  *additive along the match*: the path may consume
  ``offered + requested`` seconds of slack before the delivery counts
  as a budget violation.
* **history** — deliberately absent: history is a local resource
  policy, never part of compatibility (pinned by the property suite).

The whole check is a pure function of the two policies — no clocks,
no state, no I/O — so it is exhaustively property-testable
(``tests/pubsub/test_matching_properties.py``) and the enum
cross-product has a pinned table test that turns any matrix edit into
a visible diff.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Dict, Optional, Tuple

from repro.pubsub.policies import (Durability, OwnershipKind, QosPolicy,
                                   Reliability)

__all__ = [
    "MatchResult",
    "RELIABILITY_COMPAT",
    "DURABILITY_COMPAT",
    "OWNERSHIP_COMPAT",
    "rxo_check",
    "enum_matrix",
]

#: (offered, requested) -> compatible.  Offered must dominate: a
#: RELIABLE writer satisfies any reader; a BEST_EFFORT writer only a
#: BEST_EFFORT reader.
RELIABILITY_COMPAT: Dict[Tuple[Reliability, Reliability], bool] = {
    (Reliability.BEST_EFFORT, Reliability.BEST_EFFORT): True,
    (Reliability.BEST_EFFORT, Reliability.RELIABLE): False,
    (Reliability.RELIABLE, Reliability.BEST_EFFORT): True,
    (Reliability.RELIABLE, Reliability.RELIABLE): True,
}

#: (offered, requested) -> compatible.  Offered must dominate: a
#: TRANSIENT_LOCAL writer satisfies any reader; a VOLATILE writer
#: cannot serve a reader that requested catch-up.
DURABILITY_COMPAT: Dict[Tuple[Durability, Durability], bool] = {
    (Durability.VOLATILE, Durability.VOLATILE): True,
    (Durability.VOLATILE, Durability.TRANSIENT_LOCAL): False,
    (Durability.TRANSIENT_LOCAL, Durability.VOLATILE): True,
    (Durability.TRANSIENT_LOCAL, Durability.TRANSIENT_LOCAL): True,
}

#: (offered, requested) -> compatible.  Kinds must agree exactly.
OWNERSHIP_COMPAT: Dict[Tuple[OwnershipKind, OwnershipKind], bool] = {
    (OwnershipKind.SHARED, OwnershipKind.SHARED): True,
    (OwnershipKind.SHARED, OwnershipKind.EXCLUSIVE): False,
    (OwnershipKind.EXCLUSIVE, OwnershipKind.SHARED): False,
    (OwnershipKind.EXCLUSIVE, OwnershipKind.EXCLUSIVE): True,
}

#: The verdict for one offered/requested pair.
#:
#: ``compatible``         every RxO policy agreed.
#: ``failed``             tuple of policy names that refused the match,
#:                        in canonical order (empty when compatible).
#: ``effective_deadline`` the period the reader's monitor should run
#:                        at (the requested deadline; None = none).
#: ``effective_budget``   offered + requested latency budget — the
#:                        total slack the delivery path may consume.
MatchResult = namedtuple(
    "MatchResult",
    ["compatible", "failed", "effective_deadline", "effective_budget"])

#: Canonical policy evaluation order (stable ``failed`` tuples).
_POLICY_ORDER = ("reliability", "durability", "ownership", "deadline",
                 "liveliness")


def _leq_with_infinity(offered: Optional[float],
                       requested: Optional[float]) -> bool:
    """``offered <= requested`` where ``None`` means infinity."""
    if requested is None:
        return True
    if offered is None:
        return False
    return offered <= requested


def rxo_check(offered: QosPolicy, requested: QosPolicy) -> MatchResult:
    """Pure RxO compatibility verdict for one writer/reader pair."""
    verdicts = {
        "reliability": RELIABILITY_COMPAT[
            (offered.reliability, requested.reliability)],
        "durability": DURABILITY_COMPAT[
            (offered.durability, requested.durability)],
        "ownership": OWNERSHIP_COMPAT[
            (offered.ownership, requested.ownership)],
        "deadline": _leq_with_infinity(offered.deadline, requested.deadline),
        "liveliness": _leq_with_infinity(offered.lease, requested.lease),
    }
    failed = tuple(name for name in _POLICY_ORDER if not verdicts[name])
    return MatchResult(
        compatible=not failed,
        failed=failed,
        effective_deadline=requested.deadline,
        effective_budget=offered.latency_budget + requested.latency_budget,
    )


def enum_matrix() -> Dict[Tuple[int, int, int, int, int, int], bool]:
    """The full pure-enum cross-product as a flat pinned table.

    Keys are ``(offered_reliability, requested_reliability,
    offered_durability, requested_durability, offered_ownership,
    requested_ownership)`` as ints; values are the match verdict with
    every numeric policy left at defaults.  The exhaustive table test
    compares this against a literal so any edit to the compatibility
    rules is a visible diff.
    """
    out: Dict[Tuple[int, int, int, int, int, int], bool] = {}
    for rel_o in Reliability:
        for rel_r in Reliability:
            for dur_o in Durability:
                for dur_r in Durability:
                    for own_o in OwnershipKind:
                        for own_r in OwnershipKind:
                            offered = QosPolicy(reliability=rel_o,
                                                ownership=own_o,
                                                durability=dur_o)
                            requested = QosPolicy(reliability=rel_r,
                                                  ownership=own_r,
                                                  durability=dur_r)
                            key = (int(rel_o), int(rel_r), int(dur_o),
                                   int(dur_r), int(own_o), int(own_r))
                            out[key] = rxo_check(offered,
                                                 requested).compatible
    return out
