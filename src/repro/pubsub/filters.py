"""Content-filtered topics: a small safe sample-expression evaluator.

A reader may declare a *content filter* — a boolean expression over
the fields of a :class:`~repro.pubsub.core.Sample` — and the broker
installs it on every match so the **writer** evaluates it before
sending.  Samples the reader does not want never cross the wire, never
consume the match's EF reserve, and never count against the match's
``sent`` ledger; they show up only in the writer's ``sends_filtered``
counter (mirroring how divisor suppression is accounted).

The expression language is deliberately tiny and is interpreted over
the AST — ``eval`` is never called, and anything outside the
whitelist (calls, attributes, subscripts, comprehensions, lambdas,
names that are not sample fields) is rejected at *construction* time
with ``ValueError`` so a bad filter fails loudly at declaration, not
silently per sample:

* boolean ops        ``and`` / ``or`` / ``not``
* comparisons        ``== != < <= > >= is is-not`` (chained allowed)
* arithmetic         ``+ - * / // %`` and unary ``-``
* names              the sample fields ``topic writer seq data sent_at``
* literals           numbers, strings, True/False/None

A runtime evaluation error (e.g. ``data % 2`` on a string payload)
makes that sample *fail* the filter and increments ``errors`` — a
filter can drop traffic but never crash the writer's publish path.
"""

from __future__ import annotations

import ast
from typing import Any, FrozenSet

__all__ = ["ContentFilter", "SAMPLE_FIELDS"]

#: The sample fields an expression may name.
SAMPLE_FIELDS: FrozenSet[str] = frozenset(
    ("topic", "writer", "seq", "data", "sent_at"))

_BOOL_OPS = (ast.And, ast.Or)
_CMP_OPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
            ast.Is, ast.IsNot)
_BIN_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
_UNARY_OPS = (ast.Not, ast.USub)


def _validate(node: ast.AST, expression: str) -> None:
    """Reject any AST node outside the whitelist (recursive)."""
    if isinstance(node, ast.Expression):
        _validate(node.body, expression)
    elif isinstance(node, ast.BoolOp):
        if not isinstance(node.op, _BOOL_OPS):
            raise ValueError(f"unsupported boolean op in {expression!r}")
        for value in node.values:
            _validate(value, expression)
    elif isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, _UNARY_OPS):
            raise ValueError(f"unsupported unary op in {expression!r}")
        _validate(node.operand, expression)
    elif isinstance(node, ast.Compare):
        if not all(isinstance(op, _CMP_OPS) for op in node.ops):
            raise ValueError(f"unsupported comparison in {expression!r}")
        _validate(node.left, expression)
        for comparator in node.comparators:
            _validate(comparator, expression)
    elif isinstance(node, ast.BinOp):
        if not isinstance(node.op, _BIN_OPS):
            raise ValueError(f"unsupported operator in {expression!r}")
        _validate(node.left, expression)
        _validate(node.right, expression)
    elif isinstance(node, ast.Name):
        if node.id not in SAMPLE_FIELDS:
            raise ValueError(
                f"unknown field {node.id!r} in {expression!r} "
                f"(allowed: {', '.join(sorted(SAMPLE_FIELDS))})")
    elif isinstance(node, ast.Constant):
        if not isinstance(node.value, (int, float, str, bool, type(None))):
            raise ValueError(f"unsupported literal in {expression!r}")
    else:
        raise ValueError(
            f"unsupported syntax ({type(node).__name__}) in {expression!r}")


class ContentFilter:
    """A compiled, validated content-filter expression (value object)."""

    __slots__ = ("expression", "_tree", "evaluated", "accepted", "errors")

    def __init__(self, expression: str) -> None:
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ValueError(f"bad filter expression {expression!r}: {exc}")
        _validate(tree, expression)
        self.expression = expression
        self._tree = tree
        self.evaluated = 0
        self.accepted = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Value semantics (on the expression string; counters are stats)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentFilter):
            return NotImplemented
        return self.expression == other.expression

    def __hash__(self) -> int:
        return hash(self.expression)

    def __reduce__(self):
        return (self.__class__, (self.expression,))

    def __repr__(self) -> str:  # pragma: no cover
        return f"ContentFilter({self.expression!r})"

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, node: ast.AST, sample: Any) -> Any:
        if isinstance(node, ast.Expression):
            return self._eval(node.body, sample)
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in node.values:
                    result = self._eval(value, sample)
                    if not result:
                        return result
                return result
            result = False
            for value in node.values:
                result = self._eval(value, sample)
                if result:
                    return result
            return result
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, sample)
            return (not operand) if isinstance(node.op, ast.Not) else -operand
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, sample)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, sample)
                if isinstance(op, ast.Eq):
                    ok = left == right
                elif isinstance(op, ast.NotEq):
                    ok = left != right
                elif isinstance(op, ast.Is):
                    ok = left is right
                elif isinstance(op, ast.IsNot):
                    ok = left is not right
                elif isinstance(op, ast.Lt):
                    ok = left < right
                elif isinstance(op, ast.LtE):
                    ok = left <= right
                elif isinstance(op, ast.Gt):
                    ok = left > right
                else:
                    ok = left >= right
                if not ok:
                    return False
                left = right
            return True
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, sample)
            right = self._eval(node.right, sample)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            return left % right
        if isinstance(node, ast.Name):
            return getattr(sample, node.id)
        # _validate guarantees the only remaining node kind:
        assert isinstance(node, ast.Constant)
        return node.value

    def matches(self, sample: Any) -> bool:
        """True when the sample passes the filter (errors fail closed)."""
        self.evaluated += 1
        try:
            ok = bool(self._eval(self._tree, sample))
        except Exception:
            self.errors += 1
            return False
        if ok:
            self.accepted += 1
        return ok
