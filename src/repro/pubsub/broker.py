"""Discovery/matching broker with liveliness and ownership arbitration.

The broker is the control plane of :mod:`repro.pubsub`:

* **discovery/matching** — every registered writer is checked against
  every registered reader on the same topic with the pure
  :func:`~repro.pubsub.matching.rxo_check`; compatible pairs get a
  :class:`~repro.pubsub.core.Match` installed on both endpoints.
  Control-plane actions are direct calls (like the admission
  controller), only the *data* plane rides packets.
* **liveliness** — one
  :class:`~repro.pubsub.liveliness.LivelinessMonitor` per leased
  writer, fed by heartbeat datagrams to the broker host's well-known
  port (:data:`~repro.pubsub.core.BROKER_PORT`).  A node crash fails
  the writer host's links, its heartbeats stop arriving, and one
  lease later the monitor declares the writer dead.
* **ownership** — per topic, EXCLUSIVE readers accept only the
  strongest *live* writer; ties break to the lexicographically
  smallest writer name so failover is deterministic.  Owner changes
  are pushed to readers (out-of-band discovery, the usual DDS
  simplification) and traced as ``pubsub ownership.failover``.
* **admission** — a RELIABLE match whose writer offers KEEP_ALL
  history claims reserve budget from the admission controller
  (topic wire rate, writer host → reader host).  Granted matches are
  promoted to EF; denied ones still form but stay best-effort-class
  on the wire.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.diffserv import Dscp
from repro.net.transport import DatagramSocket
from repro.pubsub.core import BROKER_PORT, DataReader, DataWriter, Match
from repro.pubsub.liveliness import LivelinessMonitor
from repro.pubsub.matching import rxo_check
from repro.pubsub.policies import HistoryKind, OwnershipKind
from repro.sim.kernel import Kernel

__all__ = ["Broker", "RESERVE_HEADROOM"]

#: Reserved matches book this multiple of the topic's nominal wire
#: rate — slack for retransmissions and congestion-window bursts, the
#: same reserve-above-nominal idiom the fig 9 RSVP reservations use.
#: 1.5x leaves the phase-late reader of each topic with a queueing
#: RTT right at the retransmit timeout (spurious RTOs, cwnd collapse,
#: unbounded backlog); 2x keeps the reserved band short enough that
#: every reliable reader drains at the offered rate.
RESERVE_HEADROOM = 2.0


class Broker:
    """Topic discovery, RxO matching, liveliness and ownership."""

    def __init__(
        self,
        kernel: Kernel,
        nic: Optional[Any] = None,
        admission: Optional[Any] = None,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.admission = admission
        self.writers: Dict[str, DataWriter] = {}
        self.readers: Dict[str, DataReader] = {}
        self.monitors: Dict[str, LivelinessMonitor] = {}
        #: topic name -> current EXCLUSIVE owner (None = no live owner).
        self.owners: Dict[str, Optional[str]] = {}
        self.matches_formed = 0
        self.matches_rejected = 0
        self.ownership_changes = 0
        self.grants = 0
        self.grant_denials = 0
        self._udp: Optional[DatagramSocket] = None
        if nic is not None:
            self._udp = DatagramSocket(kernel, nic, port=BROKER_PORT,
                                       on_receive=self._on_datagram)

    @property
    def host_name(self) -> str:
        return self.nic.host.name if self.nic is not None else "broker"

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_writer(self, writer: DataWriter) -> None:
        if writer.name in self.writers:
            raise ValueError(f"duplicate writer name: {writer.name}")
        writer.broker = self
        self.writers[writer.name] = writer
        if writer.qos.lease is not None:
            self.monitors[writer.name] = LivelinessMonitor(
                self.kernel, writer.name, writer.qos.lease,
                on_lost=self._on_liveliness_change,
                on_revived=self._on_liveliness_change)
            writer.start_heartbeats()
        for reader in self.readers.values():
            self._try_match(writer, reader)
        if writer.qos.ownership is OwnershipKind.EXCLUSIVE:
            self._recompute_owner(writer.topic.name)

    def register_reader(self, reader: DataReader) -> None:
        if reader.name in self.readers:
            raise ValueError(f"duplicate reader name: {reader.name}")
        reader.broker = self
        self.readers[reader.name] = reader
        for writer in self.writers.values():
            self._try_match(writer, reader)
        if reader.qos.ownership is OwnershipKind.EXCLUSIVE:
            reader.owner = self.owners.get(reader.topic.name)

    def unregister_writer(self, writer: DataWriter) -> None:
        """Graceful writer departure: matches deactivate, budget frees."""
        self.writers.pop(writer.name, None)
        writer.stop_heartbeats()
        monitor = self.monitors.pop(writer.name, None)
        if monitor is not None:
            monitor.stop()
        for match in writer.matches.values():
            match.active = False
            self._release_grant(match)
        if writer.qos.ownership is OwnershipKind.EXCLUSIVE:
            self._recompute_owner(writer.topic.name)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _try_match(self, writer: DataWriter, reader: DataReader) -> None:
        if writer.topic.name != reader.topic.name:
            return
        result = rxo_check(writer.qos, reader.qos)
        tracer = self.kernel.tracer
        if not result.compatible:
            self.matches_rejected += 1
            if tracer is not None:
                tracer.instant("pubsub", "match.rejected",
                               writer=writer.name, reader=reader.name,
                               topic=writer.topic.name,
                               failed=",".join(result.failed))
            return
        match = Match(writer, reader, result)
        self._maybe_reserve(match)
        writer.matches[reader.name] = match
        reader.matched[writer.name] = match
        self.matches_formed += 1
        if tracer is not None:
            tracer.instant("pubsub", "match", writer=writer.name,
                           reader=reader.name, topic=writer.topic.name,
                           reliable=match.reliable, reserved=match.reserved)
        reader.start_deadline_monitor()

    def _maybe_reserve(self, match: Match) -> None:
        """Reliable KEEP_ALL endpoints claim reserve budget up front."""
        writer, reader = match.writer, match.reader
        if (self.admission is None or not match.reliable
                or writer.qos.history is not HistoryKind.KEEP_ALL
                or writer.nic is None or reader.nic is None):
            return
        grant_id = f"pubsub:{writer.name}->{reader.name}"
        decision = self.admission.request(
            grant_id, src=writer.host_name, dst=reader.host_name,
            rate_bps=RESERVE_HEADROOM * writer.topic.wire_rate_bps)
        if decision.admitted:
            match.reserved = True
            match.grant_id = grant_id
            match.dscp = Dscp.EF
            self.grants += 1
        else:
            self.grant_denials += 1

    def _release_grant(self, match: Match) -> None:
        if match.grant_id is not None and self.admission is not None:
            self.admission.revoke(match.grant_id)
            match.grant_id = None
            match.reserved = False

    # ------------------------------------------------------------------
    # Liveliness
    # ------------------------------------------------------------------
    def heartbeat(self, writer_name: str) -> None:
        monitor = self.monitors.get(writer_name)
        if monitor is not None:
            monitor.heartbeat()

    def writer_alive(self, writer_name: str) -> bool:
        monitor = self.monitors.get(writer_name)
        return monitor.alive if monitor is not None else True

    def _on_datagram(self, payload: Any, packet: Any) -> None:
        kind, name = payload
        if kind == "hb":
            self.heartbeat(name)

    def _on_liveliness_change(self, monitor: LivelinessMonitor) -> None:
        writer = self.writers.get(monitor.name)
        if writer is not None and (
                writer.qos.ownership is OwnershipKind.EXCLUSIVE):
            self._recompute_owner(writer.topic.name)

    # ------------------------------------------------------------------
    # Ownership arbitration
    # ------------------------------------------------------------------
    def _recompute_owner(self, topic_name: str) -> None:
        candidates = [
            w for w in self.writers.values()
            if w.topic.name == topic_name
            and w.qos.ownership is OwnershipKind.EXCLUSIVE
            and self.writer_alive(w.name)
        ]
        if candidates:
            # Strongest wins; ties break to the smallest name so
            # failover is deterministic at any worker count.
            best = min(candidates, key=lambda w: (-w.qos.strength, w.name))
            new_owner: Optional[str] = best.name
        else:
            new_owner = None
        old_owner = self.owners.get(topic_name)
        if new_owner == old_owner:
            return
        self.owners[topic_name] = new_owner
        self.ownership_changes += 1
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("pubsub", "ownership.failover", topic=topic_name,
                           old=old_owner, new=new_owner)
        for reader in self.readers.values():
            if (reader.topic.name == topic_name
                    and reader.qos.ownership is OwnershipKind.EXCLUSIVE):
                reader.owner = new_owner

    # ------------------------------------------------------------------
    # Adaptation plumbing
    # ------------------------------------------------------------------
    def set_divisor(self, reader: DataReader, divisor: int) -> None:
        """Set the send divisor on every writer matched to ``reader``."""
        divisor = max(1, int(divisor))
        for match in reader.matched.values():
            match.divisor = divisor

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Quiesce timers so a bounded run winds down cleanly."""
        for monitor in self.monitors.values():
            monitor.stop()
        for writer in self.writers.values():
            writer.stop_heartbeats()
        for reader in self.readers.values():
            reader.stop_deadline_monitor()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Broker writers={len(self.writers)} "
                f"readers={len(self.readers)} "
                f"matches={self.matches_formed}>")
