"""Discovery/matching broker with liveliness and ownership arbitration.

The broker is the control plane of :mod:`repro.pubsub`:

* **discovery/matching** — every registered writer is checked against
  every registered reader on the same topic with the pure
  :func:`~repro.pubsub.matching.rxo_check`; compatible pairs get a
  :class:`~repro.pubsub.core.Match` installed on both endpoints.
  Control-plane actions are direct calls (like the admission
  controller), only the *data* plane rides packets.
* **liveliness** — one
  :class:`~repro.pubsub.liveliness.LivelinessMonitor` per leased
  writer, fed by heartbeat datagrams to the broker host's well-known
  port (:data:`~repro.pubsub.core.BROKER_PORT`).  A node crash fails
  the writer host's links, its heartbeats stop arriving, and one
  lease later the monitor declares the writer dead.
* **ownership** — per topic, EXCLUSIVE readers accept only the
  strongest *live* writer; ties break to the lexicographically
  smallest writer name so failover is deterministic.  Owner changes
  are pushed to readers (out-of-band discovery, the usual DDS
  simplification) and traced as ``pubsub ownership.failover``.
* **admission** — a RELIABLE match whose writer offers KEEP_ALL
  history claims reserve budget from the admission controller
  (topic wire rate, writer host → reader host).  Granted matches are
  promoted to EF; denied ones still form but stay best-effort-class
  on the wire.
* **durability** — a TRANSIENT_LOCAL reader that matches a durable
  writer gets the writer's cached history replayed at match time
  (late-joiner catch-up), traced as ``pubsub durability.replay``.
* **partitions** — given a ``network``, the broker watches link state
  and arbitrates EXCLUSIVE ownership *per reachability partition*:
  readers cut off from the broker elect the strongest writer whose
  host is reachable inside their own partition (instead of freezing
  on the broker's last word), and everything re-arbitrates
  deterministically when the partition heals.  Within the broker's
  own partition arbitration stays purely lease-driven.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.diffserv import Dscp
from repro.net.transport import DatagramSocket
from repro.pubsub.core import BROKER_PORT, DataReader, DataWriter, Match
from repro.pubsub.dedup import DEDUP_WINDOW
from repro.pubsub.liveliness import LivelinessMonitor
from repro.pubsub.matching import rxo_check
from repro.pubsub.policies import Durability, HistoryKind, OwnershipKind
from repro.sim.kernel import Kernel

__all__ = ["Broker", "RESERVE_HEADROOM", "DIVISOR_GRANT_DELAY"]

#: Control-plane latency between a reader's divisor request and the
#: broker's grant reaching the writers (networked mode only; local
#: endpoints grant inline so unit tests stay synchronous).  The reader
#: paces itself immediately — this delay is exactly the gap the
#: reader-side downsampling bugfix covers.
DIVISOR_GRANT_DELAY = 0.05

#: Reserved matches book this multiple of the topic's nominal wire
#: rate — slack for retransmissions and congestion-window bursts, the
#: same reserve-above-nominal idiom the fig 9 RSVP reservations use.
#: 1.5x leaves the phase-late reader of each topic with a queueing
#: RTT right at the retransmit timeout (spurious RTOs, cwnd collapse,
#: unbounded backlog); 2x keeps the reserved band short enough that
#: every reliable reader drains at the offered rate.
RESERVE_HEADROOM = 2.0


class Broker:
    """Topic discovery, RxO matching, liveliness and ownership."""

    def __init__(
        self,
        kernel: Kernel,
        nic: Optional[Any] = None,
        admission: Optional[Any] = None,
        network: Optional[Any] = None,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.admission = admission
        #: With a Network the broker watches link state and runs
        #: per-partition ownership arbitration.  Links must exist
        #: before the broker is constructed (fig12 builds the topology
        #: first); links added later are not watched.
        self.network = network
        self.writers: Dict[str, DataWriter] = {}
        self.readers: Dict[str, DataReader] = {}
        self.monitors: Dict[str, LivelinessMonitor] = {}
        #: topic name -> current EXCLUSIVE owner *in the broker's own
        #: partition* (None = no live owner).
        self.owners: Dict[str, Optional[str]] = {}
        #: (topic, partition id) -> elected owner for readers in that
        #: partition.  Superset of :attr:`owners` (the broker's own
        #: partition appears here too).
        self.partition_owners: Dict[Tuple[str, Optional[str]],
                                    Optional[str]] = {}
        self.matches_formed = 0
        self.matches_rejected = 0
        self.ownership_changes = 0
        #: Owner changes decided for partitions *other than* the
        #: broker's own (the partition-stall fix firing).
        self.partition_elections = 0
        self.grants = 0
        self.grant_denials = 0
        self.divisor_grants = 0
        self.replays = 0
        self._rearb_pending = False
        self._udp: Optional[DatagramSocket] = None
        if nic is not None:
            self._udp = DatagramSocket(kernel, nic, port=BROKER_PORT,
                                       on_receive=self._on_datagram)
        if network is not None:
            for link in network.links:
                link.add_listener(self._on_link_state)

    @property
    def host_name(self) -> str:
        return self.nic.host.name if self.nic is not None else "broker"

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_writer(self, writer: DataWriter) -> None:
        if writer.name in self.writers:
            raise ValueError(f"duplicate writer name: {writer.name}")
        writer.broker = self
        self.writers[writer.name] = writer
        if writer.qos.lease is not None:
            self.monitors[writer.name] = LivelinessMonitor(
                self.kernel, writer.name, writer.qos.lease,
                on_lost=self._on_liveliness_change,
                on_revived=self._on_liveliness_change)
            writer.start_heartbeats()
        for reader in self.readers.values():
            self._try_match(writer, reader)
        if writer.qos.ownership is OwnershipKind.EXCLUSIVE:
            self._recompute_owner(writer.topic.name)

    def register_reader(self, reader: DataReader) -> None:
        if reader.name in self.readers:
            raise ValueError(f"duplicate reader name: {reader.name}")
        reader.broker = self
        self.readers[reader.name] = reader
        for writer in self.writers.values():
            self._try_match(writer, reader)
        if reader.qos.ownership is OwnershipKind.EXCLUSIVE:
            parts = self.partitions()
            pid = (parts.get(reader.host_name)
                   if parts is not None else None)
            key = (reader.topic.name, pid)
            if key in self.partition_owners:
                reader.owner = self.partition_owners[key]
            else:
                reader.owner = self.owners.get(reader.topic.name)

    def unregister_writer(self, writer: DataWriter) -> None:
        """Graceful writer departure: matches deactivate, budget frees."""
        self.writers.pop(writer.name, None)
        writer.stop_heartbeats()
        monitor = self.monitors.pop(writer.name, None)
        if monitor is not None:
            monitor.stop()
        for match in writer.matches.values():
            match.active = False
            self._release_grant(match)
        if writer.qos.ownership is OwnershipKind.EXCLUSIVE:
            self._recompute_owner(writer.topic.name)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _try_match(self, writer: DataWriter, reader: DataReader) -> None:
        if writer.topic.name != reader.topic.name:
            return
        result = rxo_check(writer.qos, reader.qos)
        tracer = self.kernel.tracer
        if not result.compatible:
            self.matches_rejected += 1
            if tracer is not None:
                tracer.instant("pubsub", "match.rejected",
                               writer=writer.name, reader=reader.name,
                               topic=writer.topic.name,
                               failed=",".join(result.failed))
            return
        match = Match(writer, reader, result)
        self._maybe_reserve(match)
        writer.matches[reader.name] = match
        reader.matched[writer.name] = match
        self.matches_formed += 1
        if tracer is not None:
            tracer.instant("pubsub", "match", writer=writer.name,
                           reader=reader.name, topic=writer.topic.name,
                           reliable=match.reliable, reserved=match.reserved)
        reader.start_deadline_monitor()
        if (reader.qos.durability is Durability.TRANSIENT_LOCAL
                and writer.durable_cache is not None
                and len(writer.durable_cache) > 0):
            replayed = writer.replay(match)
            self.replays += replayed
            if tracer is not None and replayed:
                tracer.instant("pubsub", "durability.replay",
                               writer=writer.name, reader=reader.name,
                               topic=writer.topic.name, samples=replayed)

    def _maybe_reserve(self, match: Match) -> None:
        """Reliable KEEP_ALL endpoints claim reserve budget up front."""
        writer, reader = match.writer, match.reader
        if (self.admission is None or not match.reliable
                or writer.qos.history is not HistoryKind.KEEP_ALL
                or writer.nic is None or reader.nic is None):
            return
        grant_id = f"pubsub:{writer.name}->{reader.name}"
        decision = self.admission.request(
            grant_id, src=writer.host_name, dst=reader.host_name,
            rate_bps=RESERVE_HEADROOM * writer.topic.wire_rate_bps)
        if decision.admitted:
            match.reserved = True
            match.grant_id = grant_id
            match.dscp = Dscp.EF
            self.grants += 1
        else:
            self.grant_denials += 1

    def _release_grant(self, match: Match) -> None:
        if match.grant_id is not None and self.admission is not None:
            self.admission.revoke(match.grant_id)
            match.grant_id = None
            match.reserved = False

    # ------------------------------------------------------------------
    # Liveliness
    # ------------------------------------------------------------------
    def heartbeat(self, writer_name: str, seq: Optional[int] = None) -> None:
        monitor = self.monitors.get(writer_name)
        if monitor is not None:
            monitor.heartbeat()
        # The writer's seq rides its heartbeats; fan the dedup-window
        # trim out to every matched reader so per-writer ledgers stay
        # O(window) over arbitrarily long runs.
        if seq is not None and seq > DEDUP_WINDOW:
            writer = self.writers.get(writer_name)
            if writer is not None:
                floor = seq - DEDUP_WINDOW
                for match in writer.matches.values():
                    match.reader.trim_dedup(writer_name, floor)

    def writer_alive(self, writer_name: str) -> bool:
        monitor = self.monitors.get(writer_name)
        return monitor.alive if monitor is not None else True

    def _on_datagram(self, payload: Any, packet: Any) -> None:
        kind = payload[0]
        if kind == "hb":
            _, name, seq = payload
            self.heartbeat(name, seq)

    def _on_liveliness_change(self, monitor: LivelinessMonitor) -> None:
        writer = self.writers.get(monitor.name)
        if writer is not None and (
                writer.qos.ownership is OwnershipKind.EXCLUSIVE):
            self._recompute_owner(writer.topic.name)

    # ------------------------------------------------------------------
    # Reachability partitions
    # ------------------------------------------------------------------
    def partitions(self) -> Optional[Dict[str, str]]:
        """Device name -> partition id (min member name), or None.

        Union-find over *up* links: two devices share a partition id
        iff a path of live links connects them.  ``None`` when the
        broker has no network view (local mode), which keeps every
        arbitration decision purely lease-driven.
        """
        if self.network is None:
            return None
        parent: Dict[str, str] = {
            name: name for name in self.network._adjacency}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:
                parent[name], name = root, parent[name]
            return root

        for link in self.network.links:
            if link.up:
                ra, rb = find(link.a.owner.name), find(link.b.owner.name)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
        members: Dict[str, List[str]] = {}
        for name in parent:
            members.setdefault(find(name), []).append(name)
        out: Dict[str, str] = {}
        for names in members.values():
            pid = min(names)
            for name in names:
                out[name] = pid
        return out

    def _host_up(self, writer: DataWriter) -> bool:
        """Does the writer's host still have any live link (carrier)?"""
        if writer.nic is None:
            return True
        return any(iface.link is not None and iface.link.up
                   for iface in writer.nic.interfaces)

    def _on_link_state(self, link: Any, up: bool) -> None:
        # Coalesce bursts (a node crash fails several links at the
        # same instant) into one zero-delay re-arbitration pass.
        if self._rearb_pending:
            return
        self._rearb_pending = True
        self.kernel.schedule(0.0, self._rearbitrate_all)

    def _rearbitrate_all(self) -> None:
        self._rearb_pending = False
        topics = sorted({
            w.topic.name for w in self.writers.values()
            if w.qos.ownership is OwnershipKind.EXCLUSIVE})
        for topic_name in topics:
            self._recompute_owner(topic_name)

    # ------------------------------------------------------------------
    # Ownership arbitration
    # ------------------------------------------------------------------
    def _arbitrate(self, candidates: List[DataWriter],
                   parts: Optional[Dict[str, str]],
                   pid: Optional[str]) -> Optional[str]:
        """Strongest viable EXCLUSIVE writer for partition ``pid``."""
        home = (parts.get(self.host_name)
                if parts is not None else None)
        viable = []
        for writer in candidates:
            if parts is None or pid == home:
                # The broker shares this partition: its lease monitors
                # are authoritative (a dead writer is evicted one
                # lease after its last heartbeat, never sooner).
                ok = self.writer_alive(writer.name)
            else:
                # The broker is unreachable from this partition: its
                # members fall back to local discovery — the strongest
                # writer whose host sits inside the partition and
                # still has carrier.
                ok = (parts.get(writer.host_name) == pid
                      and self._host_up(writer))
            if ok:
                viable.append(writer)
        if not viable:
            return None
        # Strongest wins; ties break to the smallest name so failover
        # is deterministic at any worker count.
        return min(viable, key=lambda w: (-w.qos.strength, w.name)).name

    def _recompute_owner(self, topic_name: str) -> None:
        candidates = [
            w for w in self.writers.values()
            if w.topic.name == topic_name
            and w.qos.ownership is OwnershipKind.EXCLUSIVE
        ]
        parts = self.partitions()
        home = parts.get(self.host_name) if parts is not None else None
        # Partitions currently holding EXCLUSIVE readers of this topic
        # (the broker's own partition always arbitrates, so the legacy
        # self.owners view stays live even with no readers).
        pids = {home}
        for reader in self.readers.values():
            if (reader.topic.name == topic_name
                    and reader.qos.ownership is OwnershipKind.EXCLUSIVE):
                pids.add(parts.get(reader.host_name)
                         if parts is not None else None)
        for pid in sorted(pids, key=lambda p: p or ""):
            new_owner = self._arbitrate(candidates, parts, pid)
            old_owner = self.partition_owners.get(
                (topic_name, pid), self.owners.get(topic_name))
            if pid == home:
                self.owners[topic_name] = new_owner
            self.partition_owners[(topic_name, pid)] = new_owner
            if new_owner == old_owner:
                continue
            if pid == home:
                self.ownership_changes += 1
            else:
                self.partition_elections += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant("pubsub", "ownership.failover",
                               topic=topic_name, old=old_owner,
                               new=new_owner, partition=pid)
            for reader in self.readers.values():
                if (reader.topic.name == topic_name
                        and reader.qos.ownership is OwnershipKind.EXCLUSIVE
                        and (parts.get(reader.host_name)
                             if parts is not None else None) == pid):
                    reader.owner = new_owner

    # ------------------------------------------------------------------
    # Adaptation plumbing
    # ------------------------------------------------------------------
    def set_divisor(self, reader: DataReader, divisor: int) -> None:
        """Grant a reader's divisor request to its matched writers.

        Local-mode endpoints grant inline; networked requests take one
        control-plane round trip (:data:`DIVISOR_GRANT_DELAY`), during
        which the reader paces itself locally.
        """
        divisor = max(1, int(divisor))
        if self.nic is None or reader.nic is None:
            self._grant_divisor(reader, divisor)
        else:
            self.kernel.schedule(DIVISOR_GRANT_DELAY,
                                 self._grant_divisor, reader, divisor)

    def _grant_divisor(self, reader: DataReader, divisor: int) -> None:
        self.divisor_grants += 1
        for match in reader.matched.values():
            match.divisor = divisor

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Quiesce timers so a bounded run winds down cleanly."""
        for monitor in self.monitors.values():
            monitor.stop()
        for writer in self.writers.values():
            writer.stop_heartbeats()
        for reader in self.readers.values():
            reader.stop_deadline_monitor()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Broker writers={len(self.writers)} "
                f"readers={len(self.readers)} "
                f"matches={self.matches_formed}>")
