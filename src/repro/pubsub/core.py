"""Topics and the data-plane endpoints (DataWriter / DataReader).

The control plane (who matches whom, who owns a topic) lives in the
:class:`~repro.pubsub.broker.Broker`; this module is the data plane:

* a :class:`DataWriter` fans each sample out once per *matched*
  reader — best-effort matches ride datagrams, matches where both
  sides are RELIABLE ride a per-reader stream connection whose
  retransmission effort is bounded (``RELIABLE_MAX_RTOS`` consecutive
  RTOs, well under the transport's default give-up threshold: a
  pub-sub sample that is a dozen lease periods stale is worthless);
* a :class:`DataReader` owns the receive sockets, the
  :class:`~repro.pubsub.history.HistoryCache`, exactly-once
  accounting per writer, the deadline monitor and the latency-budget
  ledger.

Endpoints also run **local** (``nic=None`` on either side): delivery
becomes a zero-delay kernel event instead of packets.  Unit and
property tests use local mode; the fig12 gauntlet runs the full
packet path.

Ordering note: sample delivery, ownership filtering and dedup all
happen in :meth:`DataReader._receive` regardless of transport, so the
invariant checkers observe one choke point.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Any, Callable, Dict, Optional, Union, TYPE_CHECKING

from repro.net.diffserv import Dscp
from repro.net.packet import HEADER_BYTES
from repro.net.transport import DatagramSocket, StreamConnection, StreamListener
from repro.pubsub.dedup import DedupLedger
from repro.pubsub.filters import ContentFilter
from repro.pubsub.history import HistoryCache
from repro.pubsub.matching import MatchResult
from repro.pubsub.policies import (Durability, OwnershipKind, QosPolicy,
                                   Reliability)
from repro.sim.kernel import Kernel, ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import Nic
    from repro.pubsub.broker import Broker

__all__ = ["BROKER_PORT", "Topic", "Sample", "Match", "DataWriter",
           "DataReader"]

#: Well-known discovery/heartbeat port on the broker host (the DDS
#: discovery port).
BROKER_PORT = 7400

#: Nominal wire size of a liveliness heartbeat datagram.
HEARTBEAT_BYTES = 32

#: One published value.  A plain namedtuple: samples travel through
#: transports, reader histories and experiment results, so they must
#: pickle byte-identically at any worker count.
Sample = namedtuple("Sample", ["topic", "writer", "seq", "data", "sent_at"])


class Topic:
    """A named stream of typed samples with a nominal rate."""

    __slots__ = ("name", "sample_bytes", "rate_hz")

    def __init__(self, name: str, sample_bytes: int = 1200,
                 rate_hz: float = 30.0) -> None:
        if sample_bytes <= 0:
            raise ValueError(f"sample_bytes must be positive: {sample_bytes}")
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive: {rate_hz}")
        self.name = name
        self.sample_bytes = int(sample_bytes)
        self.rate_hz = float(rate_hz)

    @property
    def wire_rate_bps(self) -> float:
        """Nominal on-the-wire rate (payload + per-packet header)."""
        return (self.sample_bytes + HEADER_BYTES) * 8.0 * self.rate_hz

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Topic({self.name!r}, {self.sample_bytes}B "
                f"@ {self.rate_hz:g}Hz)")


class Match:
    """One compatible writer→reader pairing (created by the broker)."""

    __slots__ = ("writer", "reader", "result", "reliable", "dscp",
                 "divisor", "reserved", "grant_id", "active", "sent",
                 "filter", "replayed")

    def __init__(self, writer: "DataWriter", reader: "DataReader",
                 result: MatchResult) -> None:
        self.writer = writer
        self.reader = reader
        self.result = result
        #: The reader's content filter, if it declared one — evaluated
        #: writer-side so rejected samples never cross the wire.
        self.filter: Optional[ContentFilter] = reader.filter
        #: Durable samples replayed to this reader at match time.
        self.replayed = 0
        #: Samples this writer pushed toward this reader (per-match
        #: ledger: the reliable exactly-once check compares it to the
        #: reader's per-writer delivery count).
        self.sent = 0
        #: Reliable transport only when *both* sides are RELIABLE; a
        #: RELIABLE writer downgrades to datagrams for a best-effort
        #: reader.
        self.reliable = (
            writer.qos.reliability is Reliability.RELIABLE
            and reader.qos.reliability is Reliability.RELIABLE)
        self.dscp = Dscp.BE
        #: Send every Nth sample (deadline-adaptive readers raise this
        #: to shed load: 1 → full rate, 3 → ~10fps, 15 → ~2fps at 30).
        self.divisor = 1
        #: True when this match holds an admission-controller grant.
        self.reserved = False
        self.grant_id: Optional[str] = None
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover
        kind = "reliable" if self.reliable else "best-effort"
        return (f"<Match {self.writer.name}->{self.reader.name} {kind} "
                f"div={self.divisor}{' reserved' if self.reserved else ''}>")


class DataWriter:
    """Publishes samples on one topic under a declared (offered) QoS."""

    #: Bounded retransmit for RELIABLE matches: consecutive RTOs before
    #: the per-reader stream gives up (it reconnects lazily on the next
    #: write, so a restored path resumes delivery).
    RELIABLE_MAX_RTOS = 6
    #: Per-reader stream window cap: a 30 msg/s feed needs a handful of
    #: in-flight segments, and the small cap keeps synchronized slow-
    #: start overshoot from many writers well inside the EF band.
    RELIABLE_WINDOW = 8

    def __init__(
        self,
        kernel: Kernel,
        topic: Topic,
        qos: QosPolicy,
        name: str,
        nic: Optional["Nic"] = None,
    ) -> None:
        self.kernel = kernel
        self.topic = topic
        self.qos = qos
        self.name = name
        self.nic = nic
        self.broker: Optional["Broker"] = None
        self.matches: Dict[str, Match] = {}
        self.seq = 0
        self.samples_written = 0
        self.samples_sent = 0
        #: Sends skipped by a reader's rate divisor (adaptation ledger).
        self.sends_suppressed = 0
        #: Sends skipped by a reader's content filter.
        self.sends_filtered = 0
        #: Datagrams refused at the first hop (local link down).
        self.send_failures = 0
        self.heartbeats_sent = 0
        #: TRANSIENT_LOCAL: everything published, bounded by the
        #: offered history policy, replayed to late-joining readers.
        self.durable_cache: Optional[HistoryCache] = None
        if qos.durability is Durability.TRANSIENT_LOCAL:
            self.durable_cache = HistoryCache(qos.history, qos.depth)
        self._udp: Optional[DatagramSocket] = None
        if nic is not None:
            self._udp = DatagramSocket(kernel, nic)
        self._conns: Dict[str, StreamConnection] = {}
        self._hb_event: Optional[ScheduledEvent] = None

    @property
    def host_name(self) -> str:
        return self.nic.host.name if self.nic is not None else self.name

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def write(self, data: Any = None) -> Sample:
        """Publish one sample to every active matched reader."""
        self.seq += 1
        self.samples_written += 1
        sample = Sample(self.topic.name, self.name, self.seq, data,
                        self.kernel.now)
        if self.durable_cache is not None:
            self.durable_cache.add(sample)
        for match in self.matches.values():
            if not match.active:
                continue
            # Filter before divisor: a filtered sample consumes neither
            # wire bytes nor the match's EF reserve, and the divisor
            # paces the published seq stream regardless of filtering.
            if match.filter is not None and not match.filter.matches(sample):
                self.sends_filtered += 1
                continue
            if match.divisor > 1 and self.seq % match.divisor != 0:
                self.sends_suppressed += 1
                continue
            self._send(match, sample)
        return sample

    def replay(self, match: Match) -> int:
        """Replay the durable cache to one (newly matched) reader.

        Returns the number of samples sent.  Replay respects the
        match's content filter but not its divisor — catch-up delivers
        the whole in-cache history, and divisors only ever rise after
        a deadline-adaptive reader has observed live traffic.
        """
        if self.durable_cache is None:
            return 0
        replayed = 0
        for sample in self.durable_cache.snapshot():
            if match.filter is not None and not match.filter.matches(sample):
                self.sends_filtered += 1
                continue
            self._send(match, sample)
            replayed += 1
        match.replayed += replayed
        return replayed

    def _send(self, match: Match, sample: Sample) -> None:
        reader = match.reader
        self.samples_sent += 1
        match.sent += 1
        if self.nic is None or reader.nic is None:
            # Local mode: a zero-delay event keeps delivery ordered
            # with everything else queued at this instant.
            self.kernel.schedule(0.0, reader._receive, sample, 0.0)
            return
        if match.reliable:
            conn = self._conns.get(reader.name)
            if conn is None or conn.closed:
                conn = StreamConnection.connect(
                    self.kernel, self.nic, reader.host_name,
                    reader.stream_port, dscp=match.dscp,
                    max_rtos=self.RELIABLE_MAX_RTOS,
                    window=self.RELIABLE_WINDOW)
                self._conns[reader.name] = conn
            conn.send_message(sample, payload_bytes=self.topic.sample_bytes)
        else:
            ok = self._udp.send_to(
                reader.host_name, reader.datagram_port, payload=sample,
                payload_bytes=self.topic.sample_bytes, dscp=match.dscp)
            if not ok:
                self.send_failures += 1

    # ------------------------------------------------------------------
    # Liveliness heartbeats (driven while a lease is offered)
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        """Begin periodic liveliness assertions (broker calls this).

        The first beat is scheduled rather than sent inline so that
        registration (usually before ``kernel.run``) emits no packets:
        monitors installed between setup and run observe every
        heartbeat's full life cycle.
        """
        if self.qos.lease is None or self._hb_event is not None:
            return
        self._hb_event = self.kernel.schedule(0.0, self._do_heartbeat)

    def _do_heartbeat(self) -> None:
        self._hb_event = None
        self._send_heartbeat()

    def stop_heartbeats(self) -> None:
        if self._hb_event is not None:
            self._hb_event.cancel()
            self._hb_event = None

    def _send_heartbeat(self) -> None:
        broker = self.broker
        if broker is None:
            return
        self.heartbeats_sent += 1
        # Heartbeats carry the writer's current seq so the broker can
        # fan dedup-window trims out to matched readers.
        if self.nic is None or broker.nic is None:
            broker.heartbeat(self.name, self.seq)
        else:
            # Dropped at the first hop while this host's link is down —
            # exactly the silence the lease monitor is listening for.
            self._udp.send_to(broker.host_name, BROKER_PORT,
                              payload=("hb", self.name, self.seq),
                              payload_bytes=HEARTBEAT_BYTES)
        interval = self.qos.lease / 3.0
        self._hb_event = self.kernel.schedule(interval, self._send_heartbeat)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DataWriter {self.name} topic={self.topic.name} "
                f"matches={len(self.matches)} seq={self.seq}>")


class DataReader:
    """Subscribes to one topic under a declared (requested) QoS."""

    def __init__(
        self,
        kernel: Kernel,
        topic: Topic,
        qos: QosPolicy,
        name: str,
        nic: Optional["Nic"] = None,
        on_sample: Optional[Callable[[Sample, float], None]] = None,
        on_deadline_check: Optional[
            Callable[["DataReader", bool], None]] = None,
        filter_expr: Optional[Union[str, ContentFilter]] = None,
    ) -> None:
        self.kernel = kernel
        self.topic = topic
        self.qos = qos
        self.name = name
        self.nic = nic
        self.broker: Optional["Broker"] = None
        self.on_sample = on_sample
        #: Content filter (installed writer-side on every match).
        self.filter: Optional[ContentFilter] = (
            ContentFilter(filter_expr) if isinstance(filter_expr, str)
            else filter_expr)
        #: Called every deadline period with (reader, missed) — the
        #: deadline-adaptive qosket hangs its contract off this.
        self.on_deadline_check = on_deadline_check
        self.history = HistoryCache(qos.history, qos.depth)
        self.matched: Dict[str, Match] = {}
        #: Current EXCLUSIVE owner (broker-pushed); None = no owner yet.
        self.owner: Optional[str] = None
        # --- delivery ledgers ---
        self.samples_received = 0
        self.delivered = 0
        self.duplicates = 0
        self.from_unmatched = 0
        self.ownership_filtered = 0
        #: Samples dropped locally while a divisor request is in
        #: flight (the reader paces itself ahead of the grant).
        self.downsampled = 0
        #: Samples below a writer's dedup trim floor (ambiguous:
        #: dropped rather than risk a duplicate delivery).
        self.stale_drops = 0
        self.budget_violations = 0
        self.deadline_misses = 0
        self.miss_streak = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self.last_arrival: Optional[float] = None
        #: Largest inter-arrival gap between accepted samples — the
        #: fig12 failover-gap evidence.
        self.max_gap = 0.0
        self._seen: Dict[str, DedupLedger] = {}
        #: The divisor this reader is currently pacing itself to.  Set
        #: immediately on request (before the broker grants) so the
        #: deadline monitor and local downsampling never flap during
        #: the request/grant gap.
        self.pace_divisor = 1
        self._deadline_event: Optional[ScheduledEvent] = None
        # --- receive endpoints ---
        self.datagram_port = 0
        self.stream_port = 0
        self._udp: Optional[DatagramSocket] = None
        self._listener: Optional[StreamListener] = None
        if nic is not None:
            self.datagram_port = nic.allocate_port()
            self._udp = DatagramSocket(kernel, nic, port=self.datagram_port,
                                       on_receive=self._on_datagram)
            if qos.reliability is Reliability.RELIABLE:
                self.stream_port = nic.allocate_port()
                self._listener = StreamListener(
                    kernel, nic, self.stream_port,
                    on_message=self._on_stream)

    @property
    def host_name(self) -> str:
        return self.nic.host.name if self.nic is not None else self.name

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.delivered if self.delivered else 0.0

    # ------------------------------------------------------------------
    # Receive path (every transport funnels through _receive)
    # ------------------------------------------------------------------
    def _on_datagram(self, payload: Any, packet: Any) -> None:
        self._receive(payload, self.kernel.now - payload.sent_at)

    def _on_stream(self, payload: Any, meta: Any) -> None:
        self._receive(payload, self.kernel.now - payload.sent_at)

    def _receive(self, sample: Sample, latency: float) -> None:
        self.samples_received += 1
        match = self.matched.get(sample.writer)
        if match is None or not match.active:
            self.from_unmatched += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant("pubsub", "sample.unmatched",
                               reader=self.name, writer=sample.writer,
                               topic=sample.topic)
            return
        if (self.qos.ownership is OwnershipKind.EXCLUSIVE
                and sample.writer != self.owner):
            self.ownership_filtered += 1
            return
        if self.pace_divisor > 1 and sample.seq % self.pace_divisor != 0:
            # The writer has not caught up with our requested divisor
            # yet — enforce it locally so the paced cadence starts the
            # instant the reader decided to shed load.
            self.downsampled += 1
            return
        ledger = self._seen.get(sample.writer)
        if ledger is None:
            ledger = self._seen[sample.writer] = DedupLedger()
        verdict = ledger.observe(sample.seq)
        if verdict == "duplicate":
            self.duplicates += 1
            return
        if verdict == "stale":
            self.stale_drops += 1
            return
        now = self.kernel.now
        if self.last_arrival is not None:
            gap = now - self.last_arrival
            if gap > self.max_gap:
                self.max_gap = gap
        self.last_arrival = now
        budget = match.result.effective_budget
        if budget > 0.0 and latency > budget:
            self.budget_violations += 1
        self.history.add((sample.writer, sample.seq, round(latency, 9)))
        self.delivered += 1
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency
        if self.on_sample is not None:
            self.on_sample(sample, latency)

    # ------------------------------------------------------------------
    # Deadline monitoring (started by the broker at first match)
    # ------------------------------------------------------------------
    def start_deadline_monitor(self) -> None:
        if self.qos.deadline is None or self._deadline_event is not None:
            return
        self.last_arrival = None
        self._anchor = self.kernel.now
        self._deadline_event = self.kernel.schedule(
            self.qos.deadline, self._deadline_check)

    def stop_deadline_monitor(self) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None

    def _deadline_check(self) -> None:
        period = self.qos.deadline
        since = (self.kernel.now - self.last_arrival
                 if self.last_arrival is not None
                 else self.kernel.now - self._anchor)
        # A reader pacing itself to every Nth sample expects arrivals
        # at the paced period, not the declared deadline — judging
        # against the raw deadline is what used to blow the monitor
        # during a divisor request/grant gap.  The monitor cadence
        # itself stays at the declared deadline.
        expected = period
        if self.pace_divisor > 1:
            expected = max(expected, self.pace_divisor / self.topic.rate_hz)
        # Strictly-greater with a float guard: a sample landing exactly
        # on the deadline edge made it.
        missed = since > expected * (1.0 + 1e-9)
        if missed:
            self.deadline_misses += 1
            self.miss_streak += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant("pubsub", "deadline.miss", reader=self.name,
                               topic=self.topic.name, streak=self.miss_streak)
        else:
            self.miss_streak = 0
        if self.on_deadline_check is not None:
            self.on_deadline_check(self, missed)
        self._deadline_event = self.kernel.schedule(
            period, self._deadline_check)

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def request_divisor(self, divisor: int) -> None:
        """Ask matched writers to send every Nth sample to this reader.

        The reader adopts the divisor locally *immediately* (pacing its
        deadline expectation and downsampling in-flight traffic); the
        broker's grant then reconciles the writers.
        """
        self.pace_divisor = max(1, int(divisor))
        if self.broker is not None:
            self.broker.set_divisor(self, divisor)

    def trim_dedup(self, writer_name: str, floor: int) -> None:
        """Forget dedup state for one writer's seqs ``<= floor``."""
        ledger = self._seen.get(writer_name)
        if ledger is not None:
            ledger.trim(floor)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DataReader {self.name} topic={self.topic.name} "
                f"delivered={self.delivered} misses={self.deadline_misses}>")
