"""Native priority ranges for the operating systems in the paper.

Figure 2 of the paper shows one RT-CORBA priority (100) landing on
different native priorities per OS: QNX 16, LynxOS 128, Solaris 136.
The ORB's priority-mapping layer (:mod:`repro.orb.rt`) converts CORBA
priorities (0..32767) into these native ranges; this module records the
ranges themselves.

Higher native value always means "more important" in this simulation
(real Solaris/Linux nice semantics differ, but RT classes on all four
systems are higher-is-stronger, which is the convention RT-CORBA
mappings normalize to).
"""

from __future__ import annotations

import enum
from typing import Tuple


class OsType(enum.Enum):
    """Operating systems appearing in the paper's testbed and Figure 2."""

    LINUX = "linux"
    TIMESYS_LINUX = "timesys-linux"
    QNX = "qnx"
    LYNXOS = "lynxos"
    SOLARIS = "solaris"


#: (min, max) native real-time priority per OS.
_RANGES = {
    OsType.LINUX: (1, 99),  # SCHED_FIFO static priorities
    OsType.TIMESYS_LINUX: (1, 99),
    OsType.QNX: (0, 31),
    OsType.LYNXOS: (0, 255),
    OsType.SOLARIS: (100, 159),  # RT scheduling class, global priorities
}


def native_priority_range(os_type: OsType) -> Tuple[int, int]:
    """Return the (lowest, highest) native RT priority for ``os_type``."""
    return _RANGES[os_type]


def clamp_native(os_type: OsType, priority: int) -> int:
    """Clamp ``priority`` into the native range of ``os_type``."""
    low, high = _RANGES[os_type]
    return max(low, min(high, int(priority)))
