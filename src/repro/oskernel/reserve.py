"""Resource-kernel CPU reserves (TimeSys Linux model, paper section 3.3).

A reserve is a (compute time *C*, period *T*) pair.  Once admitted, the
attached thread is guaranteed *C* seconds of CPU in every period of
length *T*: while budget remains, the thread runs in a *boost band*
above all ordinary priorities (so competing load cannot preempt it, per
the paper: "for every period, the application will have the requested
amount of CPU compute time, and will not be pre-empted").

Enforcement policy on depletion:

``EnforcementPolicy.HARD``
    The thread is suspended until the next replenishment (strict
    metering; background work cannot overrun its reservation).

``EnforcementPolicy.SOFT``
    The thread keeps running at its native priority, competing like any
    other thread, until the budget replenishes.

Admission control is utilization-based: the manager admits a new
reserve only if the summed utilization ``sum(C_i / T_i)`` stays within
the configured bound.

Replenishment is *lazy*: the budget is topped up whenever the scheduler
observes that a period boundary has passed (``sync``), and a wake-up
event is armed only while a depleted reserve has work waiting.  An idle
reserve therefore schedules no events at all — important so that
simulations terminate when all real work drains.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import List, Optional

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.quantize import EPSILON, clamp
from repro.oskernel.cpu import CPU
from repro.oskernel.thread import SimThread, ThreadState

_reserve_ids = itertools.count(1)


class AdmissionError(RuntimeError):
    """Raised when a reserve request would exceed the utilization bound."""


class EnforcementPolicy(enum.Enum):
    HARD = "hard"
    SOFT = "soft"


class Reserve:
    """An admitted CPU reservation bound to one thread.

    Created via :meth:`ReserveManager.request`; do not instantiate
    directly.
    """

    #: Priority band added on top of native priority while budget remains.
    boost_band = 1_000_000.0

    #: Budget below one simulated nanosecond counts as depleted; float
    #: rounding in time subtraction otherwise leaves denormal remainders
    #: that would schedule zero-length CPU slices forever.  Shared with
    #: the token-bucket layer via :mod:`repro.sim.quantize` so every
    #: budget accumulator in the stack rounds the same way.
    budget_epsilon = EPSILON

    def __init__(
        self,
        manager: "ReserveManager",
        thread: SimThread,
        compute: float,
        period: float,
        policy: EnforcementPolicy,
    ) -> None:
        self.reserve_id = next(_reserve_ids)
        self._manager = manager
        self._kernel = manager.kernel
        self.thread = thread
        self.compute = float(compute)
        self.period = float(period)
        self.policy = policy
        self.budget_remaining = float(compute)
        self.active = True
        #: Replenishment count (observability).
        self.replenishments = 0
        #: Total CPU seconds consumed against this reserve.
        self.consumed_total = 0.0
        self._start = self._kernel.now
        self._last_boundary = 0
        self._wakeup: Optional[ScheduledEvent] = None
        thread.reserve = self
        thread.cpu.on_reserve_attached(thread)

    # ------------------------------------------------------------------
    @property
    def is_hard(self) -> bool:
        return self.policy is EnforcementPolicy.HARD

    @property
    def utilization(self) -> float:
        return self.compute / self.period

    @property
    def has_budget(self) -> bool:
        """True if the synced budget allows boosted execution now."""
        self.sync()
        return self.budget_remaining > self.budget_epsilon

    def boost_priority(self) -> float:
        """Effective priority while budget remains.

        Budgeted reserves are scheduled **earliest deadline first**
        within the boost band (the deadline being the next period
        boundary, when the budget must have been deliverable) — the
        resource-kernel discipline for which the admission test
        ``sum(C/T) <= bound`` is provably sufficient.  Encoded as
        ``2*band - deadline`` so that any budgeted reserve outranks
        every normal thread and earlier deadlines rank higher; a
        fixed-priority-within-band scheme (FIFO or even RM) can leave
        an admitted short-period reserve short in its first period.
        """
        return 2.0 * self.boost_band - self.next_boundary_time()

    # ------------------------------------------------------------------
    # Budget lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> bool:
        """Top up the budget if one or more period boundaries passed.

        Returns ``True`` if a replenishment happened.  Idempotent and
        cheap; called by the scheduler at every decision point, so the
        budget is always current without needing periodic events.
        """
        if not self.active:
            return False
        boundary = self._boundary_index(self._kernel.now)
        if boundary <= self._last_boundary:
            return False
        delta = boundary - self._last_boundary
        self.replenishments += delta
        self._last_boundary = boundary
        self.budget_remaining = self.compute
        if self.thread.state == ThreadState.SUSPENDED:
            self.thread.state = ThreadState.READY
        tracer = self._kernel.tracer
        if tracer is not None:
            tracer.instant("os", "reserve.replenish",
                           reserve=self.reserve_id, thread=self.thread.name,
                           periods=delta, budget=self.compute)
        return True

    def consume(self, cpu_seconds: float) -> bool:
        """Charge ``cpu_seconds`` against the budget.

        Returns ``True`` if the budget is now depleted.  Called by the
        CPU while charging the running thread.
        """
        self.consumed_total += cpu_seconds
        self.budget_remaining = clamp(
            self.budget_remaining - cpu_seconds, 0.0, self.compute)
        if self.budget_remaining <= self.budget_epsilon:
            self.budget_remaining = 0.0
            tracer = self._kernel.tracer
            if tracer is not None:
                tracer.instant("os", "reserve.deplete",
                               reserve=self.reserve_id,
                               thread=self.thread.name,
                               policy=self.policy.value,
                               consumed=self.consumed_total)
            return True
        return False

    def next_boundary_time(self) -> float:
        """Simulated time of the next period boundary after now."""
        now = self._kernel.now
        boundary = self._boundary_index(now) + 1
        return max(now, self._start + boundary * self.period)

    def arm_wakeup(self) -> None:
        """Schedule a scheduler kick at the next period boundary.

        Called when a depleted reserve still has pending work: at the
        boundary the budget returns and the thread must immediately
        regain its boost (possibly preempting whoever runs then).
        """
        if not self.active or self._wakeup is not None:
            return
        self.sync()
        self._wakeup = self._kernel.schedule_at(
            self.next_boundary_time(), self._on_wakeup
        )

    def cancel(self) -> None:
        """Release the reservation and its admitted utilization."""
        if not self.active:
            return
        self.active = False
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
        self.thread.reserve = None
        if self.thread.state == ThreadState.SUSPENDED:
            self.thread.state = ThreadState.READY
        self.thread.cpu.on_reserve_detached(self.thread)
        self._manager.release(self)
        self.thread.cpu.reschedule()

    # ------------------------------------------------------------------
    def _boundary_index(self, now: float) -> int:
        # The 1e-9 guard absorbs float error in the division so that a
        # wake-up firing exactly at a boundary lands in the new period.
        return int(math.floor((now - self._start) / self.period + 1e-9))

    def _on_wakeup(self) -> None:
        self._wakeup = None
        if not self.active:
            return
        self.sync()
        self.thread.cpu.reschedule()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Reserve {self.reserve_id} C={self.compute} T={self.period} "
            f"budget={self.budget_remaining:.6f} {self.policy.value}>"
        )


class ReserveManager:
    """Admission control and bookkeeping for one CPU's reserves.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    cpu:
        The CPU whose capacity is being reserved.
    utilization_bound:
        Maximum summed ``C/T`` the manager will admit.  Defaults to 0.9,
        leaving headroom for unreserved activity, mirroring resource
        kernels that never hand out the full processor.
    """

    def __init__(
        self, kernel: Kernel, cpu: CPU, utilization_bound: float = 0.9
    ) -> None:
        if not 0 < utilization_bound <= 1.0:
            raise ValueError(
                f"utilization bound must be in (0, 1], got {utilization_bound}"
            )
        self.kernel = kernel
        self.cpu = cpu
        self.utilization_bound = utilization_bound
        self._reserves: List[Reserve] = []

    # ------------------------------------------------------------------
    @property
    def total_utilization(self) -> float:
        return sum(r.utilization for r in self._reserves)

    @property
    def reserves(self) -> List[Reserve]:
        return list(self._reserves)

    def request(
        self,
        thread: SimThread,
        compute: float,
        period: float,
        policy: EnforcementPolicy = EnforcementPolicy.SOFT,
    ) -> Reserve:
        """Admit a (C, T) reserve for ``thread`` or raise AdmissionError."""
        if compute <= 0 or period <= 0:
            raise ValueError(
                f"compute and period must be positive (C={compute}, T={period})"
            )
        if compute > period:
            raise ValueError(
                f"compute time {compute} exceeds period {period}"
            )
        if thread.cpu is not self.cpu:
            raise ValueError(
                f"thread {thread.name!r} is not bound to CPU {self.cpu.name!r}"
            )
        if thread.reserve is not None:
            raise AdmissionError(
                f"thread {thread.name!r} already holds a reserve"
            )
        new_utilization = self.total_utilization + compute / period
        if new_utilization > self.utilization_bound + 1e-12:
            raise AdmissionError(
                f"reserve C={compute} T={period} would raise utilization to "
                f"{new_utilization:.3f} > bound {self.utilization_bound:.3f}"
            )
        reserve = Reserve(self, thread, compute, period, policy)
        self._reserves.append(reserve)
        self.cpu.reschedule()
        return reserve

    def release(self, reserve: Reserve) -> None:
        """Forget an admitted reserve (called from Reserve.cancel)."""
        try:
            self._reserves.remove(reserve)
        except ValueError:
            pass
