"""Schedulable threads.

A :class:`SimThread` is the unit the CPU scheduler reasons about.  It
does not itself contain code: simulation processes *submit work* on
behalf of a thread via :meth:`repro.oskernel.cpu.CPU.submit` and wait
for the completion signal.  This mirrors how the middleware charges its
processing (marshaling, dispatch, image processing) to specific OS
threads with specific priorities.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.oskernel.cpu import CPU
    from repro.oskernel.reserve import Reserve

_thread_ids = itertools.count(1)


class ThreadState(enum.Enum):
    IDLE = "idle"  # no pending work
    READY = "ready"  # runnable, not on the CPU
    RUNNING = "running"
    SUSPENDED = "suspended"  # hard reserve depleted; waiting replenishment
    DEAD = "dead"  # killed; never runnable again


class SimThread:
    """A simulated OS thread.

    Parameters
    ----------
    cpu:
        The CPU this thread is bound to (no migration; the paper's
        testbed machines are uniprocessors).
    priority:
        Native priority; higher runs first.
    name:
        Diagnostic label.
    """

    def __init__(self, cpu: "CPU", priority: int, name: str = "") -> None:
        self.tid = next(_thread_ids)
        self.cpu = cpu
        self.name = name or f"thread-{self.tid}"
        self._priority = int(priority)
        self.state = ThreadState.IDLE
        #: Attached CPU reserve, if any (see repro.oskernel.reserve).
        self.reserve: Optional["Reserve"] = None
        #: Total CPU seconds consumed (observability).
        self.cpu_time = 0.0
        cpu.register(self)

    # ------------------------------------------------------------------
    @property
    def priority(self) -> int:
        return self._priority

    def set_priority(self, priority: int) -> None:
        """Change the native priority; takes effect immediately.

        This is the hook RT-CORBA uses when a request carrying a
        propagated priority arrives (CLIENT_PROPAGATED model).
        """
        priority = int(priority)
        if priority == self._priority:
            return
        self._priority = priority
        self.cpu.on_priority_change(self)
        self.cpu.reschedule()

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.DEAD

    def kill(self) -> None:
        """Terminate the thread permanently.

        Pending work is discarded, an attached reserve is cancelled
        (releasing its admitted utilization), and the CPU's dispatch
        structures are purged so a stale lazy-heap entry can never run
        a dead thread.  Idempotent.
        """
        if self.state is ThreadState.DEAD:
            return
        self.cpu.on_thread_killed(self)

    def effective_priority(self, now: float) -> float:
        """Priority used by the scheduler at simulated time ``now``.

        Threads running on an active reserve with remaining budget are
        boosted above every normal thread (the resource kernel schedules
        reserved capacity ahead of ordinary timesharing/RT activity),
        and rank earliest-deadline-first among themselves.  A depleted
        *soft* reserve falls back to the native priority; a depleted
        *hard* reserve makes the thread ineligible (handled in the CPU
        via :class:`ThreadState.SUSPENDED`).
        """
        if self.reserve is not None and self.reserve.has_budget:
            return self.reserve.boost_priority()
        return float(self._priority)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SimThread {self.name!r} prio={self._priority} "
            f"state={self.state.value}>"
        )
