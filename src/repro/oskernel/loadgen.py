"""Competing CPU load generation.

The paper's Fig 5/6 and Table 2 experiments introduce "competing CPU
load ... variable and not sustained" on the machine under test.  The
generator below reproduces that: a thread at a configurable priority
that alternates randomly sized busy bursts with randomly sized gaps, so
that the load is bursty rather than a constant hog.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.oskernel.host import Host
from repro.oskernel.thread import SimThread


class CpuLoadGenerator:
    """Bursty background CPU load on one host.

    Parameters
    ----------
    kernel, host:
        Where to generate load.
    priority:
        Native priority of the load thread.  The paper's "competing
        load" sits between the high- and low-priority application
        threads in the Fig 5 experiment, and above the unreserved ATR
        thread in the Table 2 experiment.
    duty_cycle:
        Long-run fraction of CPU demanded (0..1+; >1 saturates).
    burst_mean:
        Mean busy-burst length in seconds (exponentially distributed).
    rng:
        Seeded random stream.
    """

    def __init__(
        self,
        kernel: Kernel,
        host: Host,
        priority: int,
        duty_cycle: float = 0.5,
        burst_mean: float = 0.05,
        rng: Optional[random.Random] = None,
    ) -> None:
        if duty_cycle <= 0:
            raise ValueError(f"duty_cycle must be positive, got {duty_cycle}")
        self.kernel = kernel
        self.host = host
        self.duty_cycle = float(duty_cycle)
        self.burst_mean = float(burst_mean)
        self.rng = rng or random.Random(0)
        self.thread: SimThread = host.spawn_thread("loadgen", priority=priority)
        self._running = False
        self._process: Optional[Process] = None
        #: Total CPU seconds requested so far (observability).
        self.demand_generated = 0.0

    def start(self) -> None:
        """Begin generating load (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = Process(
            self.kernel, self._run(), name=f"{self.host.name}.loadgen"
        )

    def stop(self) -> None:
        """Stop after the current burst completes."""
        self._running = False

    def _run(self):
        cpu = self.host.cpu
        while self._running:
            burst = self.rng.expovariate(1.0 / self.burst_mean)
            # Gap sized so busy/(busy+gap) averages to the duty cycle.
            if self.duty_cycle >= 1.0:
                gap = 0.0
            else:
                mean_gap = self.burst_mean * (1.0 - self.duty_cycle) / self.duty_cycle
                gap = self.rng.expovariate(1.0 / mean_gap) if mean_gap > 0 else 0.0
            self.demand_generated += burst
            request = cpu.submit(self.thread, burst)
            yield request.done
            if gap > 0:
                yield gap
