"""Preemptive fixed-priority CPU scheduling.

The CPU model is exact: at every scheduling point (work submission,
completion, priority change, reserve depletion or replenishment) the
running thread is charged for precisely the simulated time it held the
CPU, and the highest effective-priority runnable thread is (re)selected.
Preemption is therefore instantaneous, like an ideal RTOS with zero
context-switch cost — configurable context-switch overhead can be added
via ``switch_cost``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.process import Signal
from repro.oskernel.thread import SimThread, ThreadState

# Work below one simulated nanosecond is considered complete.  The
# epsilon must be coarse enough that ``now + slice`` is always a
# representable later float, or zero-length slices would loop forever at
# one timestamp (classic DES pathology).
_EPSILON = 1e-9
_request_ids = itertools.count(1)


class WorkRequest:
    """A quantum of CPU demand charged to one thread.

    Completion is announced through :attr:`done`, a
    :class:`~repro.sim.process.Signal` that fires with the request
    itself as payload.
    """

    __slots__ = (
        "rid",
        "thread",
        "amount",
        "remaining",
        "done",
        "submitted_at",
        "completed_at",
    )

    def __init__(self, kernel: Kernel, thread: SimThread, amount: float) -> None:
        self.rid = next(_request_ids)
        self.thread = thread
        self.amount = float(amount)
        self.remaining = float(amount)
        self.done = Signal(kernel, name=f"work-{self.rid}.done")
        self.submitted_at = kernel.now
        self.completed_at: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        """Submission-to-completion time, or ``None`` if still pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<WorkRequest {self.rid} thread={self.thread.name!r} "
            f"remaining={self.remaining:.6f}>"
        )


class CPU:
    """A uniprocessor with preemptive fixed-priority scheduling.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Diagnostic label.
    speed:
        Relative speed factor; a request for ``w`` seconds of work takes
        ``w / speed`` seconds of simulated time when running alone.
    """

    __slots__ = ("kernel", "name", "speed", "_threads", "_queues",
                 "_current", "_run_start", "_completion_event",
                 "_ready_seq", "_ready_order", "busy_time",
                 "context_switches", "_last_dispatched",
                 "_ready_heap", "_reserved_threads", "_entry_seq")

    def __init__(
        self,
        kernel: Kernel,
        name: str = "cpu",
        speed: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.kernel = kernel
        self.name = name
        self.speed = float(speed)
        self._threads: List[SimThread] = []
        self._queues: Dict[int, List[WorkRequest]] = {}
        self._current: Optional[SimThread] = None
        self._run_start = 0.0
        self._completion_event: Optional[ScheduledEvent] = None
        self._ready_seq = itertools.count(1)
        self._ready_order: Dict[int, int] = {}
        #: Total busy CPU seconds (observability).
        self.busy_time = 0.0
        #: Number of context switches performed.
        self.context_switches = 0
        self._last_dispatched = -1
        # Dispatch working set, split by how the scheduling key ages.
        # Unreserved threads have a static key (priority, ready order),
        # so they live in a lazy max-heap and cost O(log n) per ready
        # transition instead of O(threads) per dispatch — the scan over
        # every registered thread made dispatch O(streams x events) once
        # the capacity farm parked 64 encoder threads here.  Reserved
        # threads have time-varying keys (EDF within the boost band) and
        # stay in a small list that is scanned exactly like before.
        self._ready_heap: List[Tuple[int, int, int, SimThread]] = []
        self._reserved_threads: List[SimThread] = []
        self._entry_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Registration and submission
    # ------------------------------------------------------------------
    def register(self, thread: SimThread) -> None:
        self._threads.append(thread)
        self._queues[thread.tid] = []

    def submit(self, thread: SimThread, work_seconds: float) -> WorkRequest:
        """Queue ``work_seconds`` of CPU demand for ``thread``.

        Requests from the same thread execute in FIFO order.  Returns
        the request; wait on ``request.done`` for completion.
        """
        if work_seconds < 0:
            raise ValueError(f"negative work: {work_seconds}")
        if thread.state is ThreadState.DEAD:
            raise ValueError(
                f"cannot submit work to dead thread {thread.name!r}")
        request = WorkRequest(self.kernel, thread, work_seconds)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.begin("os", "work", span=f"work:{request.rid}",
                         cpu=self.name, thread=thread.name,
                         amount=work_seconds)
        queue = self._queues[thread.tid]
        queue.append(request)
        if thread.state == ThreadState.IDLE:
            self._make_ready(thread)
        self.reschedule()
        return request

    def _make_ready(self, thread: SimThread) -> None:
        thread.state = ThreadState.READY
        order = next(self._ready_seq)
        self._ready_order[thread.tid] = order
        if thread.reserve is None:
            heapq.heappush(
                self._ready_heap,
                (-thread.priority, order, next(self._entry_seq), thread),
            )

    def on_priority_change(self, thread: SimThread) -> None:
        """Re-key ``thread`` after a native-priority change.

        Old heap entries self-invalidate (their recorded priority no
        longer matches the thread's); a fresh entry keeps the thread
        dispatchable at its new priority within the same ready episode.
        """
        order = self._ready_order.get(thread.tid)
        if thread.reserve is None and order is not None:
            heapq.heappush(
                self._ready_heap,
                (-thread.priority, order, next(self._entry_seq), thread),
            )

    def on_reserve_attached(self, thread: SimThread) -> None:
        """Move ``thread`` to the dynamic-key (reserved) working set."""
        if thread not in self._reserved_threads:
            self._reserved_threads.append(thread)

    def on_thread_killed(self, thread: SimThread) -> None:
        """Tear ``thread`` out of every dispatch structure.

        Called from :meth:`SimThread.kill`.  The lazy ready-heap keeps
        stale entries by design; killing must therefore invalidate the
        thread's ready episode (``_ready_order``) *and* leave no pending
        work, so the staleness checks in :meth:`_dispatch` reject any
        leftover heap entry before it can run a dead thread.
        """
        if thread.state is ThreadState.DEAD:
            return
        if thread is self._current:
            # Settle the books for the partial slice and cancel the
            # armed completion event before tearing the thread down.
            self._charge_current()
        queue = self._queues[thread.tid]
        abandoned = len(queue)
        queue.clear()
        self._ready_order.pop(thread.tid, None)
        reserve = thread.reserve
        if reserve is not None:
            # Releases the admitted utilization; with the queue already
            # drained the detach hook re-inserts nothing.
            reserve.cancel()
        thread.state = ThreadState.DEAD
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("os", "thread.kill", cpu=self.name,
                           thread=thread.name, abandoned=abandoned)
        self.reschedule()

    def on_reserve_detached(self, thread: SimThread) -> None:
        """Return ``thread`` to the static-key heap after a cancel."""
        try:
            self._reserved_threads.remove(thread)
        except ValueError:
            pass
        order = self._ready_order.get(thread.tid)
        if order is not None and self._queues[thread.tid]:
            heapq.heappush(
                self._ready_heap,
                (-thread.priority, order, next(self._entry_seq), thread),
            )

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def reschedule(self) -> None:
        """Charge the running thread and re-select the highest-priority one.

        Safe to call at any time; this is the single entry point used by
        submissions, priority changes, and reserve events.
        """
        self._charge_current()
        self._dispatch()

    def _charge_current(self) -> None:
        thread = self._current
        if thread is None:
            return
        now = self.kernel.now
        elapsed = max(0.0, now - self._run_start)
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self._current = None
        queue = self._queues[thread.tid]
        request = queue[0] if queue else None
        consumed = elapsed * self.speed
        thread.cpu_time += consumed
        self.busy_time += elapsed
        if request is not None:
            request.remaining -= consumed
        reserve = thread.reserve
        depleted = False
        if reserve is not None and consumed > 0:
            depleted = reserve.consume(consumed)
        if request is not None and request.remaining <= _EPSILON:
            self._complete(thread, request)
        elif depleted and reserve is not None and reserve.is_hard:
            thread.state = ThreadState.SUSPENDED
        else:
            thread.state = ThreadState.READY
        if request is not None and request.remaining > _EPSILON:
            tracer = self.kernel.tracer
            if tracer is not None and consumed > 0:
                tracer.instant(
                    "os", "cpu.preempt", cpu=self.name, thread=thread.name,
                    consumed=consumed, remaining=request.remaining,
                    depleted=depleted,
                )
        if (
            depleted
            and reserve is not None
            and self._queues[thread.tid]
        ):
            # Work is still pending: make sure the scheduler is kicked
            # when the budget returns at the next period boundary.
            reserve.arm_wakeup()

    def _complete(self, thread: SimThread, request: WorkRequest) -> None:
        queue = self._queues[thread.tid]
        queue.pop(0)
        request.remaining = 0.0
        request.completed_at = self.kernel.now
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.end("os", "work", span=f"work:{request.rid}",
                       cpu=self.name, thread=thread.name,
                       response=request.response_time)
        request.done.fire(request)
        if queue:
            thread.state = ThreadState.READY
        else:
            thread.state = ThreadState.IDLE
            self._ready_order.pop(thread.tid, None)

    def _dispatch(self) -> None:
        now = self.kernel.now
        candidate: Optional[SimThread] = None
        best_key = None
        queues = self._queues
        ready_order = self._ready_order
        eligible = (ThreadState.READY, ThreadState.RUNNING)
        for thread in self._reserved_threads:
            if thread.state not in eligible:
                continue
            if not queues[thread.tid]:
                continue
            key = (
                thread.effective_priority(now),
                -ready_order.get(thread.tid, 0),
            )
            if best_key is None or key > best_key:
                best_key = key
                candidate = thread
        heap = self._ready_heap
        while heap:
            neg_priority, order, _seq, thread = heap[0]
            if (
                thread.reserve is not None
                or ready_order.get(thread.tid) != order
                or thread.priority != -neg_priority
                or not queues[thread.tid]
                or thread.state not in eligible
            ):
                heapq.heappop(heap)  # stale entry: episode or key moved on
                continue
            # Valid top: the best unreserved contender.  It stays in the
            # heap (its key is unchanged while it keeps pending work).
            key = (float(-neg_priority), -order)
            if best_key is None or key > best_key:
                best_key = key
                candidate = thread
            break
        if candidate is None:
            return
        request = self._queues[candidate.tid][0]
        candidate.state = ThreadState.RUNNING
        self._current = candidate
        self._run_start = now
        if candidate.tid != self._last_dispatched:
            self.context_switches += 1
            self._last_dispatched = candidate.tid
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant("os", "cpu.dispatch", cpu=self.name,
                               thread=candidate.name, priority=best_key[0])
        slice_work = request.remaining
        reserve = candidate.reserve
        if reserve is not None and reserve.has_budget:
            # Run at most until the budget is exhausted or the period
            # boundary replenishes it, then re-evaluate — a slice must
            # never straddle a boundary, or the charge would deplete a
            # budget that was refilled mid-slice.
            to_boundary = (
                reserve.next_boundary_time() - now
            ) * self.speed
            slice_work = min(
                slice_work,
                reserve.budget_remaining,
                max(_EPSILON, to_boundary),
            )
        duration = slice_work / self.speed
        self._completion_event = self.kernel.schedule(duration, self.reschedule)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def running(self) -> Optional[SimThread]:
        return self._current

    def queue_depth(self, thread: SimThread) -> int:
        return len(self._queues[thread.tid])

    def utilization(self) -> float:
        """Fraction of simulated time the CPU has been busy so far."""
        if self.kernel.now <= 0:
            return 0.0
        # Include the in-flight slice so the figure is current.
        in_flight = 0.0
        if self._current is not None:
            in_flight = self.kernel.now - self._run_start
        return (self.busy_time + in_flight) / self.kernel.now

    def __repr__(self) -> str:  # pragma: no cover
        running = self._current.name if self._current else None
        return f"<CPU {self.name!r} running={running!r}>"
