"""Hosts: the unit tying together a CPU, an OS type, and network ports.

A :class:`Host` is what experiment topologies are built from.  The
network substrate attaches NICs to hosts (see
:mod:`repro.net.topology`); the ORB spawns threads on the host's CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.kernel import Kernel
from repro.oskernel.cpu import CPU
from repro.oskernel.priorities import OsType, native_priority_range
from repro.oskernel.reserve import ReserveManager
from repro.oskernel.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import Nic


class Host:
    """A simulated endsystem.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Unique host name (used for addressing in the network substrate).
    os_type:
        Determines the native priority range RT-CORBA maps into.
    cpu_speed:
        Relative CPU speed (1.0 = the reference 1 GHz testbed machine).
    reserve_bound:
        Utilization bound for the host's reserve manager.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        os_type: OsType = OsType.LINUX,
        cpu_speed: float = 1.0,
        reserve_bound: float = 0.9,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.os_type = os_type
        self.cpu = CPU(kernel, name=f"{name}.cpu", speed=cpu_speed)
        self.reserve_manager = ReserveManager(
            kernel, self.cpu, utilization_bound=reserve_bound
        )
        self._nics: Dict[str, "Nic"] = {}
        self._threads: Dict[str, SimThread] = {}

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def spawn_thread(self, name: str, priority: Optional[int] = None) -> SimThread:
        """Create a thread on this host's CPU.

        ``priority`` defaults to the bottom of the native RT range.
        """
        if priority is None:
            priority = native_priority_range(self.os_type)[0]
        thread = SimThread(self.cpu, priority, name=f"{self.name}.{name}")
        self._threads[name] = thread
        return thread

    def thread(self, name: str) -> SimThread:
        return self._threads[name]

    @property
    def priority_range(self) -> tuple:
        return native_priority_range(self.os_type)

    # ------------------------------------------------------------------
    # Network attachment (populated by repro.net.topology)
    # ------------------------------------------------------------------
    def attach_nic(self, nic: "Nic") -> None:
        self._nics[nic.ifname] = nic

    def nic(self, name: str = "eth0") -> "Nic":
        return self._nics[name]

    @property
    def nics(self) -> Dict[str, "Nic"]:
        return dict(self._nics)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name!r} os={self.os_type.value}>"
