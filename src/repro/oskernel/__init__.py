"""Simulated operating-system substrate.

Models the endsystem half of the paper's testbed: per-host CPUs with
preemptive fixed-priority scheduling (the behaviour the RT-CORBA
priority mappings target on Linux/QNX/LynxOS/Solaris) and TimeSys-style
resource-kernel **CPU reserves** — an admitted (compute-time C,
period T) reserve is guaranteed C seconds of CPU every T seconds
regardless of competing load (paper section 3.3).

The scheduler is exact, not statistical: work requests are charged for
precisely the simulated time they held the CPU, preemption happens at
the instant a higher-priority thread becomes runnable, and reserve
budgets replenish on period boundaries.
"""

from repro.oskernel.cpu import CPU, WorkRequest
from repro.oskernel.host import Host
from repro.oskernel.loadgen import CpuLoadGenerator
from repro.oskernel.priorities import OsType, native_priority_range
from repro.oskernel.reserve import (
    AdmissionError,
    EnforcementPolicy,
    Reserve,
    ReserveManager,
)
from repro.oskernel.thread import SimThread, ThreadState

__all__ = [
    "AdmissionError",
    "CPU",
    "CpuLoadGenerator",
    "EnforcementPolicy",
    "Host",
    "OsType",
    "Reserve",
    "ReserveManager",
    "SimThread",
    "ThreadState",
    "WorkRequest",
    "native_priority_range",
]
