"""Fluid-flow background-traffic engine (hybrid fluid/packet simulation).

See :mod:`repro.fluid.engine` for the model and DESIGN.md §9 for the
architecture discussion.
"""

from repro.fluid.engine import FluidEngine, FluidFlow, FluidLink

__all__ = ["FluidEngine", "FluidFlow", "FluidLink"]
