"""The fluid-flow background-traffic engine.

Per-packet event simulation prices every background datagram at a
queue push, a queue pop and a callback — which is why the fig 9
capacity sweep stops at N=64 streams.  This engine replaces the
*aggregate* traffic (best-effort stream farms, cross traffic) with
fluid flows: piecewise-constant per-flow rate shares that change only
at **epochs** (admission, revocation, link failure/restore, adaptive
contract transitions).  Between epochs nothing is simulated at all;
byte ledgers are integrated analytically (``bytes = rate x dt``) when
the next epoch — or the end of the run — arrives.

Foreground/measured streams stay fully packet-simulated on the
existing kernel.  The hybrid coupling is the **residual-capacity
service model**: each :class:`FluidLink` may be attached to a packet
:class:`~repro.net.link.Interface`, whose transmitter then serializes
packets at ``capacity - fluid_served`` instead of the raw link rate
(:attr:`FluidLink.packet_residual_bps`).  The fluid share computation
in turn budgets for the packet flows' registered nominal rates
(:meth:`FluidLink.register_packet_load`), so neither side double-books
the wire.  Packet-level queueing delay and loss then *emerge* from the
real qdisc draining at the residual rate, while fluid flows carry an
analytic queueing-delay estimate (standing-backlog bound) used for
their own latency metrics.

Rate-share model (per directed link, strict-priority two classes):

* reserved (admitted) fluid flows plus registered reserved packet
  load are served first; admission keeps their sum below capacity, and
  if a fault breaks that the class is scaled proportionally;
* best-effort flows (fluid plus registered packet load) share the
  remaining capacity proportionally to their offered rates — the
  behaviour a tail-dropped FIFO band converges to for constant-rate
  sources;
* per-flow served rate across a path is the product of its links'
  class shares (arrival rates at downstream links are upstream-thinned
  via a small Jacobi fixed-point, exact for single-bottleneck paths).

Epoch recomputes are coalesced onto a :class:`~repro.sim.coalesce.
TickCoalescer` grid so a burst of 100 000 admissions at one simulated
instant costs **one** share recompute, not 100 000.  All float ledgers
follow the :mod:`repro.sim.quantize` policy.

Determinism: the engine schedules only through the coalescer, never
consumes random numbers, and iterates flows/links in insertion order,
so a hybrid run is bit-reproducible from its seed like any other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.coalesce import TickCoalescer
from repro.sim.kernel import Kernel
from repro.sim.quantize import EPSILON, clamp

__all__ = ["FluidFlow", "FluidLink", "FluidEngine"]

#: Never let the hybrid residual starve the packet plane completely:
#: the transmitter keeps at least this fraction of raw link capacity.
MIN_RESIDUAL_FRACTION = 1e-6

#: Shares closer to 1 than this are treated as uncongested.
_SHARE_EPS = 1e-6


class FluidFlow:
    """One fluid traffic flow: a piecewise-constant rate along a path."""

    __slots__ = (
        "name", "reserved", "adaptive", "tenant", "links",
        "rate_bps", "nominal_bps", "deadline",
        "served_share", "latency",
        "offered_bytes", "served_bytes", "lost_bytes", "shed_bytes",
        "served_on_time_bytes", "latency_time_sum", "active_seconds",
    )

    def __init__(self, name: str, rate_bps: float,
                 links: Sequence["FluidLink"], reserved: bool = False,
                 adaptive: bool = False, tenant: Optional[str] = None,
                 nominal_bps: Optional[float] = None,
                 deadline: Optional[float] = None) -> None:
        self.name = name
        self.reserved = bool(reserved)
        self.adaptive = bool(adaptive)
        self.tenant = tenant
        self.links: List["FluidLink"] = list(links)
        #: Offered on-wire rate right now (piecewise constant).
        self.rate_bps = float(rate_bps)
        #: The rate the application *wants*; the adaptive governor sheds
        #: ``rate_bps`` below this and books the gap as ``shed_bytes``.
        self.nominal_bps = float(nominal_bps if nominal_bps is not None
                                 else rate_bps)
        #: Frames later than this are deadline misses (None = no deadline).
        self.deadline = deadline
        #: Fraction of the offered rate currently delivered end to end.
        self.served_share = 1.0
        #: Current end-to-end latency estimate (s).
        self.latency = 0.0
        # -- integrated ledgers (bytes / seconds) -----------------------
        self.offered_bytes = 0.0
        self.served_bytes = 0.0
        self.lost_bytes = 0.0
        #: Bytes the governor shed at the source (nominal - offered).
        self.shed_bytes = 0.0
        #: Served bytes whose latency estimate met the deadline.
        self.served_on_time_bytes = 0.0
        #: Integral of latency over active time (for the time-weighted mean).
        self.latency_time_sum = 0.0
        self.active_seconds = 0.0

    # -- derived metrics ------------------------------------------------
    @property
    def loss_fraction(self) -> float:
        """Lifetime fraction of offered bytes that were lost."""
        if self.offered_bytes <= 0.0:
            return 0.0
        return self.lost_bytes / self.offered_bytes

    @property
    def mean_latency(self) -> float:
        """Time-weighted mean of the latency estimate."""
        if self.active_seconds <= 0.0:
            return 0.0
        return self.latency_time_sum / self.active_seconds

    def __repr__(self) -> str:  # pragma: no cover
        cls = "res" if self.reserved else "be"
        return (f"<FluidFlow {self.name!r} {cls} "
                f"{self.rate_bps / 1e6:.2f}Mbps share={self.served_share:.3f}>")


class FluidLink:
    """The fluid view of one directed link (optionally hybrid-attached).

    Parameters
    ----------
    name:
        Stable label (``"router->dst"`` style).
    capacity_bps:
        Serialization capacity.  When an interface is attached the live
        ``iface.link.bandwidth_bps`` wins, so degrade faults are seen
        at the next epoch.
    iface:
        Optional packet :class:`~repro.net.link.Interface` to couple:
        its transmitter reads :attr:`packet_residual_bps` and its
        ``fail``/``restore`` notifications drive epochs.
    delay:
        Propagation delay contributed to flow latency estimates.
    queue_bytes:
        Standing best-effort backlog bound (the qdisc band budget the
        fluid aggregate consumes) used for the queueing-delay estimate.
    """

    __slots__ = (
        "name", "engine", "iface", "delay", "queue_bytes", "up",
        "_capacity_bps", "packet_reserved_bps", "packet_be_bps",
        "reserved_share", "be_share", "fluid_served_bps", "fluid_be_in_bps",
        "packet_residual_bps", "be_queue_delay", "_be_band_base",
        "offered_bytes", "served_bytes", "lost_bytes",
    )

    def __init__(self, name: str, engine: "FluidEngine",
                 capacity_bps: float, iface=None, delay: float = 50e-6,
                 queue_bytes: float = 300_000.0) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self.name = name
        self.engine = engine
        self.iface = iface
        self.delay = float(delay)
        self.queue_bytes = float(queue_bytes)
        self.up = True
        self._capacity_bps = float(capacity_bps)
        #: Nominal rates of packet-simulated flows using this link,
        #: accounted in the share math so fluid never books their share
        #: of the wire.
        self.packet_reserved_bps = 0.0
        self.packet_be_bps = 0.0
        # -- recomputed at each epoch -----------------------------------
        self.reserved_share = 1.0
        self.be_share = 1.0
        self.fluid_served_bps = 0.0
        self.fluid_be_in_bps = 0.0
        self.packet_residual_bps = float(capacity_bps)
        self.be_queue_delay = 0.0
        #: The attached qdisc's native BE band capacity, captured the
        #: first time the fluid aggregate claims its share of it.
        self._be_band_base: Optional[int] = None
        # -- integrated ledgers (fluid bytes only) ----------------------
        self.offered_bytes = 0.0
        self.served_bytes = 0.0
        self.lost_bytes = 0.0

    @property
    def capacity_bps(self) -> float:
        """Live capacity: the attached link's bandwidth wins."""
        if self.iface is not None:
            return self.iface.link.bandwidth_bps
        return self._capacity_bps

    # ------------------------------------------------------------------
    def register_packet_load(self, rate_bps: float,
                             reserved: bool = False) -> None:
        """Budget a packet-simulated flow's nominal rate on this link."""
        if rate_bps < 0:
            raise ValueError(f"negative packet load: {rate_bps}")
        self.engine._sync()
        if reserved:
            self.packet_reserved_bps += float(rate_bps)
        else:
            self.packet_be_bps += float(rate_bps)
        self.engine._mark_dirty()

    def _apply_queue_budget(self) -> None:
        """Shrink the attached qdisc's BE band to the packet share.

        The fluid aggregate occupies its proportional share of the
        standing best-effort backlog, so the packet-simulated flows may
        only fill the remainder — without this, hybrid best-effort
        packets would see the *whole* band budget drained at the
        *residual* rate and report queueing delays a large factor above
        the packet-level ground truth.
        """
        iface = self.iface
        if iface is None:
            return
        from repro.net.diffserv import PhbClass
        qdisc = iface.qdisc
        base = getattr(qdisc, "_base", qdisc)  # GRQ wraps a DiffServ base
        capacities = getattr(base, "_capacities", None)
        if capacities is None:
            return  # plain FIFO etc.: no band budget to share
        if self._be_band_base is None:
            self._be_band_base = capacities[PhbClass.DEFAULT]
        fluid_be = self.fluid_be_in_bps
        if fluid_be <= EPSILON:
            share = 1.0
        else:
            total = self.packet_be_bps + fluid_be
            share = self.packet_be_bps / total if total > EPSILON else 1.0
        capacities[PhbClass.DEFAULT] = max(
            1, int(round(self._be_band_base * share)))

    def on_link_state(self, up: bool) -> None:
        """Fault-layer notification: the underlying link failed/restored."""
        if up == self.up:
            return
        self.engine._sync()
        self.up = bool(up)
        self.engine._mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FluidLink {self.name!r} {self.capacity_bps / 1e6:.1f}Mbps "
                f"be_share={self.be_share:.3f}>")


class FluidEngine:
    """Owns the fluid flows/links of one simulation and their epochs.

    Epoch triggers — :meth:`add_flow`, :meth:`remove_flow`,
    :meth:`set_rate`, :meth:`FluidLink.on_link_state`,
    :meth:`FluidLink.register_packet_load`, and the adaptive governor —
    all integrate the elapsed interval first (old rates), then mark the
    share solve dirty; the solve itself is coalesced onto the
    ``quantum`` grid so same-instant bursts share one recompute.

    ``finalize()`` must run after ``kernel.run`` returns: it integrates
    the tail interval so the ledgers cover the full horizon.
    """

    #: Jacobi passes for the share fixed-point (exact in 2 passes for
    #: single-bottleneck paths; the cap bounds pathological topologies).
    MAX_PASSES = 8
    #: Governor/share relaxation rounds within one epoch.
    MAX_GOVERNOR_ROUNDS = 6
    #: Adaptive flows shed when their share drops below this.
    GOVERNOR_TRIGGER = 0.95
    #: ...but never below this fraction of their nominal rate.
    GOVERNOR_FLOOR_FRACTION = 0.1
    #: Reaction delay before a shed takes effect (a QuO contract
    #: observes loss over a window before transitioning regions).
    GOVERNOR_DELAY = 1.0

    def __init__(self, kernel: Kernel, quantum: float = 1e-3,
                 governor_delay: Optional[float] = None) -> None:
        self.kernel = kernel
        self.coalescer = TickCoalescer(kernel, quantum)
        self.governor_delay = (self.GOVERNOR_DELAY if governor_delay is None
                               else float(governor_delay))
        self._links: Dict[str, FluidLink] = {}
        self._flows: Dict[str, FluidFlow] = {}
        self._last_sync = kernel.now
        self._dirty = False
        self._governor_pending = False
        self._closed = False
        #: Share recomputes performed (observability / BENCH).
        self.epochs = 0
        #: Governor rate transitions applied (observability).
        self.governor_transitions = 0

    # ------------------------------------------------------------------
    # Topology / flows
    # ------------------------------------------------------------------
    def add_link(self, name: str, capacity_bps: float, iface=None,
                 delay: float = 50e-6,
                 queue_bytes: float = 300_000.0) -> FluidLink:
        if name in self._links:
            raise ValueError(f"duplicate fluid link {name!r}")
        link = FluidLink(name, self, capacity_bps, iface=iface,
                         delay=delay, queue_bytes=queue_bytes)
        self._links[name] = link
        if iface is not None:
            if iface.fluid is not None:
                raise ValueError(
                    f"interface {iface.name!r} already has a fluid link")
            iface.fluid = link
        return link

    def attach_interface(self, name: str, iface, queue_bytes: float = 300_000.0,
                         delay: Optional[float] = None) -> FluidLink:
        """Shorthand: fluid link mirroring a packet interface's egress."""
        return self.add_link(
            name, iface.link.bandwidth_bps, iface=iface,
            delay=iface.link.delay if delay is None else delay,
            queue_bytes=queue_bytes)

    def link(self, name: str) -> FluidLink:
        return self._links[name]

    def links(self) -> List[FluidLink]:
        return list(self._links.values())

    def flows(self) -> List[FluidFlow]:
        return list(self._flows.values())

    def flow(self, name: str) -> FluidFlow:
        return self._flows[name]

    def add_flow(self, name: str, rate_bps: float,
                 links: Sequence[FluidLink], reserved: bool = False,
                 adaptive: bool = False, tenant: Optional[str] = None,
                 nominal_bps: Optional[float] = None,
                 deadline: Optional[float] = None) -> FluidFlow:
        if name in self._flows:
            raise ValueError(f"duplicate fluid flow {name!r}")
        if rate_bps < 0:
            raise ValueError(f"negative rate: {rate_bps}")
        if not links:
            raise ValueError(f"fluid flow {name!r} needs at least one link")
        self._sync()
        flow = FluidFlow(name, rate_bps, links, reserved=reserved,
                         adaptive=adaptive, tenant=tenant,
                         nominal_bps=nominal_bps, deadline=deadline)
        self._flows[name] = flow
        self._mark_dirty()
        return flow

    def remove_flow(self, name: str) -> bool:
        """Revoke a flow; unknown names are a no-op (returns False)."""
        if name not in self._flows:
            return False
        self._sync()
        del self._flows[name]
        self._mark_dirty()
        return True

    def set_rate(self, name: str, rate_bps: float) -> None:
        """Change a flow's offered rate (an explicit epoch trigger)."""
        if rate_bps < 0:
            raise ValueError(f"negative rate: {rate_bps}")
        self._sync()
        self._flows[name].rate_bps = float(rate_bps)
        self._mark_dirty()

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    def _mark_dirty(self) -> None:
        if self._dirty or self._closed:
            return
        self._dirty = True
        self.coalescer.call_after(0.0, self._epoch_event)

    def _epoch_event(self) -> None:
        # A coalesced recompute may fire after close() (teardown) or
        # after an earlier same-tick event already resolved the epoch;
        # both are deliberate no-ops.
        if self._closed or not self._dirty:
            return
        self._dirty = False
        self._sync()
        self._recompute()

    def _sync(self) -> None:
        """Integrate the interval since the last sync at current rates."""
        now = self.kernel.now
        dt = now - self._last_sync
        if dt <= 0.0:
            return
        self._last_sync = now
        for flow in self._flows.values():
            rate = flow.rate_bps
            offered = rate * dt / 8.0
            served = offered * flow.served_share
            flow.offered_bytes += offered
            flow.served_bytes += served
            flow.lost_bytes += clamp(offered - served, 0.0, offered)
            if flow.nominal_bps > rate:
                flow.shed_bytes += (flow.nominal_bps - rate) * dt / 8.0
            flow.latency_time_sum += flow.latency * dt
            flow.active_seconds += dt
            if flow.deadline is None or flow.latency <= flow.deadline:
                flow.served_on_time_bytes += served
        # Per-link ledgers: one pass over flows, walking each path and
        # thinning the arrival rate by the upstream shares (exact
        # because rates were piecewise constant over the interval).
        for flow in self._flows.values():
            rate = flow.rate_bps
            for hop in flow.links:
                if not hop.up:
                    break
                share = (hop.reserved_share if flow.reserved
                         else hop.be_share)
                offered = rate * dt / 8.0
                served = offered * share
                hop.offered_bytes += offered
                hop.served_bytes += served
                hop.lost_bytes += clamp(offered - served, 0.0, offered)
                rate *= share

    def _recompute(self) -> None:
        """Solve the piecewise-constant shares; apply the governor."""
        self.epochs += 1
        links = list(self._links.values())
        flows = list(self._flows.values())
        shed_requests: List[tuple] = []
        for _round in range(self.MAX_GOVERNOR_ROUNDS):
            self._solve_shares(links, flows)
            shed_requests = self._governor_candidates(flows)
            if not shed_requests or self.governor_delay > 0.0:
                break
            # Immediate governor (delay 0): relax in-place this epoch.
            for flow, new_rate in shed_requests:
                flow.rate_bps = new_rate
                self.governor_transitions += 1
            shed_requests = []
        if shed_requests and not self._governor_pending:
            self._governor_pending = True
            self.coalescer.call_after(self.governor_delay,
                                      self._governor_event)
        tracer = self.kernel.tracer
        if tracer is not None:
            for link in links:
                tracer.instant(
                    "fluid", "epoch",
                    link=link.name, epoch=self.epochs,
                    reserved_share=link.reserved_share,
                    be_share=link.be_share,
                    residual=link.packet_residual_bps,
                )

    def _solve_shares(self, links: List[FluidLink],
                      flows: List[FluidFlow]) -> None:
        capacities = {link: (link.capacity_bps if link.up else 0.0)
                      for link in links}
        for _ in range(self.MAX_PASSES):
            res_in = {link: link.packet_reserved_bps for link in links}
            be_in = {link: link.packet_be_bps for link in links}
            for flow in flows:
                rate = flow.rate_bps
                bucket = res_in if flow.reserved else be_in
                for hop in flow.links:
                    if not hop.up:
                        rate = 0.0
                        break
                    bucket[hop] += rate
                    rate *= (hop.reserved_share if flow.reserved
                             else hop.be_share)
            worst = 0.0
            for link in links:
                cap = capacities[link]
                total_res = res_in[link]
                if cap <= 0.0:
                    new_res_share = 0.0
                    new_be_share = 0.0
                elif total_res > cap:
                    # A fault broke the admission guarantee: the
                    # reserved class degrades proportionally and
                    # best effort starves entirely.
                    new_res_share = cap / total_res
                    new_be_share = 0.0
                else:
                    new_res_share = 1.0
                    be_cap = cap - total_res
                    total_be = be_in[link]
                    if total_be <= EPSILON:
                        new_be_share = 1.0
                    elif total_be <= be_cap:
                        new_be_share = 1.0
                    else:
                        new_be_share = be_cap / total_be
                worst = max(worst,
                            abs(new_res_share - link.reserved_share),
                            abs(new_be_share - link.be_share))
                link.reserved_share = new_res_share
                link.be_share = new_be_share
            if worst <= _SHARE_EPS:
                break
        # Final pass: per-link served aggregates + per-flow end-to-end
        # shares and latency estimates from the converged fixed point.
        fluid_served = {link: 0.0 for link in links}
        fluid_be_in = {link: 0.0 for link in links}
        for flow in flows:
            rate = flow.rate_bps
            for hop in flow.links:
                if not hop.up:
                    rate = 0.0
                    break
                if not flow.reserved:
                    fluid_be_in[hop] += rate
                share = (hop.reserved_share if flow.reserved
                         else hop.be_share)
                fluid_served[hop] += rate * share
                rate *= share
            flow.served_share = (rate / flow.rate_bps
                                 if flow.rate_bps > EPSILON else
                                 (1.0 if flow.rate_bps == 0.0 else 0.0))
        for link in links:
            cap = capacities[link]
            served = min(fluid_served[link], cap)
            link.fluid_served_bps = served
            link.fluid_be_in_bps = fluid_be_in[link]
            raw_cap = link.capacity_bps
            link.packet_residual_bps = max(
                raw_cap - served, raw_cap * MIN_RESIDUAL_FRACTION)
            link._apply_queue_budget()
            if not link.up:
                link.be_queue_delay = 0.0
            elif link.be_share < 1.0 - _SHARE_EPS:
                # The BE band is standing full: waiting time is the
                # backlog bound drained at the class service rate
                # (capacity left after the strict-priority reserved
                # class, fluid and packet alike).
                res_served = 0.0
                for flow in flows:
                    if not flow.reserved:
                        continue
                    rate = flow.rate_bps
                    for hop in flow.links:
                        if not hop.up:
                            rate = 0.0
                            break
                        if hop is link:
                            break
                        rate *= hop.reserved_share
                    else:
                        rate = 0.0
                    res_served += rate * link.reserved_share
                be_service = max(
                    cap - link.packet_reserved_bps - res_served,
                    cap * MIN_RESIDUAL_FRACTION)
                link.be_queue_delay = link.queue_bytes * 8.0 / be_service
            else:
                link.be_queue_delay = 0.0
        # Latency estimates need the queue delays just computed.
        for flow in flows:
            latency = 0.0
            for hop in flow.links:
                if not hop.up:
                    break
                latency += hop.delay
                if not flow.reserved:
                    latency += hop.be_queue_delay
            flow.latency = latency

    def _governor_candidates(self, flows: List[FluidFlow]) -> List[tuple]:
        out = []
        for flow in flows:
            if not flow.adaptive or flow.reserved:
                continue
            share = flow.served_share
            if share >= self.GOVERNOR_TRIGGER:
                continue
            floor = flow.nominal_bps * self.GOVERNOR_FLOOR_FRACTION
            new_rate = clamp(flow.rate_bps * share, floor, flow.nominal_bps)
            if abs(new_rate - flow.rate_bps) > 0.01 * flow.nominal_bps:
                out.append((flow, new_rate))
        return out

    def _governor_event(self) -> None:
        self._governor_pending = False
        if self._closed:
            return
        self._sync()
        changed = False
        for flow, new_rate in self._governor_candidates(
                list(self._flows.values())):
            flow.rate_bps = new_rate
            self.governor_transitions += 1
            changed = True
        if changed:
            self._mark_dirty()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Integrate up to ``kernel.now``; call after the run completes."""
        self._sync()

    def close(self) -> None:
        """Detach: pending coalesced epochs/governor events become no-ops."""
        self._closed = True
        self._dirty = False
        self._governor_pending = False

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FluidEngine flows={len(self._flows)} "
                f"links={len(self._links)} epochs={self.epochs}>")
