"""IP-like packets.

A :class:`Packet` is addressed by *host name* and *port* (this network
does not need a numeric addressing plan), and carries the two header
fields the paper's mechanisms act on: the 6-bit DiffServ codepoint and
the 2-bit ECN field (section 3.2: "An IP header has an 8 bit DiffServ
field that encodes router-level QoS into six bits of DiffServ Codepoint
... and two bits of Explicit Congestion Notification").
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.net.diffserv import Dscp

_packet_ids = itertools.count(1)

#: Fixed per-packet header overhead (IP + transport), in bytes.
HEADER_BYTES = 40

#: Conventional Ethernet MTU used when transports fragment, in bytes.
MTU_BYTES = 1500


class Protocol(enum.Enum):
    """Transport protocol demultiplexing key."""

    UDP = "udp"
    TCP = "tcp"
    RSVP = "rsvp"


class Packet:
    """One simulated datagram.

    ``payload`` is opaque application data (bytes or any Python object);
    ``payload_bytes`` sets the simulated size independently of the real
    payload so that, e.g., a synthetic video frame object can "weigh"
    12 kB on the wire.
    """

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "protocol",
        "payload",
        "payload_bytes",
        "dscp",
        "ecn",
        "flow_id",
        "created_at",
        "hops",
        "size_bytes",
        "size_bits",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        src_port: int,
        dst_port: int,
        protocol: Protocol,
        payload: Any = None,
        payload_bytes: int = 0,
        dscp: Dscp = Dscp.BE,
        flow_id: Optional[str] = None,
        created_at: float = 0.0,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.src_port = int(src_port)
        self.dst_port = int(dst_port)
        self.protocol = protocol
        self.payload = payload
        self.payload_bytes = int(payload_bytes)
        self.dscp = dscp
        #: ECN congestion-experienced mark (set by AQM-capable queues).
        self.ecn = False
        #: Flow identity used by IntServ classifiers; defaults to the
        #: 5-tuple-ish string so unrelated traffic never collides.
        self.flow_id = flow_id or f"{src}:{src_port}->{dst}:{dst_port}"
        self.created_at = created_at
        #: Number of store-and-forward hops traversed (observability).
        self.hops = 0
        # Sizes are fixed at creation (no code mutates payload_bytes);
        # precomputed because every hop reads them several times and
        # attribute loads beat property calls on this path.
        self.size_bytes = self.payload_bytes + HEADER_BYTES
        self.size_bits = self.size_bytes * 8

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet {self.packet_id} {self.src}:{self.src_port}->"
            f"{self.dst}:{self.dst_port} {self.protocol.value} "
            f"{self.size_bytes}B dscp={self.dscp.name}>"
        )
