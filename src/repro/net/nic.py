"""Host network interfaces.

A :class:`Nic` is a host's attachment to the network.  It owns one or
more :class:`~repro.net.link.Interface` objects (multi-homed hosts —
like the paper's video distributor bridging a wireless and a wired
segment — have several), forwards outbound packets onto the interface
routed toward the destination, and demultiplexes inbound packets to
bound transport endpoints by ``(protocol, port)``.

Hosts never forward transit traffic: a packet addressed elsewhere that
arrives here is counted and dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Kernel
from repro.net.link import Interface
from repro.net.packet import Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.oskernel.host import Host
    from repro.net.intserv import RsvpAgent

#: Receive callback signature: (packet) -> None.
Receiver = Callable[[Packet], None]


class Nic:
    """One host's network attachment point.

    The Nic is a :class:`~repro.net.topology.Device`: the Network wires
    its interfaces to routers or directly to other hosts, and fills in
    :attr:`routes` for multi-homed hosts.
    """

    def __init__(self, kernel: Kernel, host: "Host", name: str = "eth0") -> None:
        self.kernel = kernel
        self.host = host
        #: Device name used for routing/addressing: the host's name.
        self.name = host.name
        #: Interface label within the host (e.g. "eth0").
        self.ifname = name
        self.interfaces: List[Interface] = []
        #: Destination host name -> egress interface (multi-homed only;
        #: single-homed hosts always use their one interface).
        self.routes: Dict[str, Interface] = {}
        self._bindings: Dict[Tuple[Protocol, int], Receiver] = {}
        self._next_ephemeral = 49152
        #: Packets delivered to a bound endpoint.
        self.delivered = 0
        #: Packets with no bound endpoint (dropped, counted).
        self.undeliverable = 0
        #: RSVP host agent, if IntServ signaling is enabled.
        self.rsvp_agent: Optional["RsvpAgent"] = None
        host.attach_nic(self)

    # ------------------------------------------------------------------
    # Port management
    # ------------------------------------------------------------------
    def bind(self, protocol: Protocol, port: int, receiver: Receiver) -> None:
        key = (protocol, int(port))
        if key in self._bindings:
            raise ValueError(f"{self.name}: port {key} already bound")
        self._bindings[key] = receiver

    def unbind(self, protocol: Protocol, port: int) -> None:
        self._bindings.pop((protocol, int(port)), None)

    def allocate_port(self) -> int:
        """Hand out an unused ephemeral port number."""
        while True:
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if not any(p == port for (_, p) in self._bindings):
                return port

    # ------------------------------------------------------------------
    # Device protocol (topology wiring)
    # ------------------------------------------------------------------
    def add_interface(self, interface: Interface) -> None:
        self.interfaces.append(interface)

    @property
    def interface(self) -> Optional[Interface]:
        """The primary (first) interface; None if unattached."""
        return self.interfaces[0] if self.interfaces else None

    def set_route(self, destination: str, interface: Interface) -> None:
        self.routes[destination] = interface

    def egress_for(self, destination: str) -> Interface:
        """Interface used for traffic toward ``destination``."""
        if not self.interfaces:
            raise RuntimeError(f"{self.name} is not attached to a link")
        chosen = self.routes.get(destination)
        return chosen if chosen is not None else self.interfaces[0]

    def receive(self, packet: Packet, ingress: Interface) -> None:
        tracer = self.kernel.tracer
        if packet.dst != self.host.name:
            # Hosts do not forward.
            self.undeliverable += 1
            if tracer is not None:
                tracer.instant("net", "nic.undeliverable", host=self.name,
                               flow=packet.flow_id,
                               packet=packet.packet_id, reason="transit")
            return
        if packet.protocol is Protocol.RSVP and self.rsvp_agent is not None:
            self.rsvp_agent.handle_local(packet, ingress)
            return
        receiver = self._bindings.get((packet.protocol, packet.dst_port))
        if receiver is None:
            self.undeliverable += 1
            if tracer is not None:
                tracer.instant("net", "nic.undeliverable", host=self.name,
                               flow=packet.flow_id,
                               packet=packet.packet_id, reason="unbound")
            return
        self.delivered += 1
        if tracer is not None:
            tracer.instant("net", "nic.deliver", host=self.name,
                           flow=packet.flow_id, packet=packet.packet_id)
        receiver(packet)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Push ``packet`` toward the network; False if dropped locally."""
        if packet.dst == self.host.name:
            # Loopback: deliver on the next tick, no wire involved.
            self.kernel.schedule(0.0, self.receive, packet, None)
            return True
        return self.egress_for(packet.dst).send(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.name}.{self.ifname}>"
