"""Competing network traffic generators.

The paper's experiments congest the network with constant-rate cross
traffic (16 Mbps in Figs 4-6; a 43.8 Mbps burst in Fig 7/Table 1).
:class:`CbrTrafficSource` reproduces that; :class:`PoissonTrafficSource`
adds a burstier alternative used by tests and ablations.

Bulk cross traffic is the simulator's single largest event producer
(hundreds of thousands of emissions per figure), so the emit path is
built for throughput while staying bit-identical to the one-event-per
-packet original:

* inter-packet gaps are produced in vectorized batches
  (:meth:`_TrafficSource._gap_batch`) — one constant fill for CBR, one
  block of RNG draws for Poisson (same draws, same order as the
  scalar path, just computed ahead of time);
* the emission timer is a single :class:`ScheduledEvent` re-armed via
  :meth:`~repro.sim.kernel.Kernel.rearm` instead of a fresh allocation
  per packet — the fresh sequence number is drawn at the exact point
  the old code called ``schedule()``, so dispatch order is unchanged.

The source's RNG must be private to it (the default is); batching
draws from a stream shared with another consumer would reorder that
consumer's draws.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.net.diffserv import Dscp
from repro.net.nic import Nic
from repro.net.packet import MTU_BYTES, Packet, Protocol


class _TrafficSource:
    """Shared machinery: schedule packet emissions until stopped."""

    #: Inter-packet gaps precomputed per batch.
    GAP_BATCH = 256

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        dst: str,
        rate_bps: float,
        packet_bytes: int = MTU_BYTES,
        dscp: Dscp = Dscp.BE,
        dst_port: int = 9,  # the traditional discard port
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        self.kernel = kernel
        self.nic = nic
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.packet_bytes = int(packet_bytes)
        self.dscp = dscp
        self.dst_port = dst_port
        self.src_port = nic.allocate_port()
        # Constant for the source's lifetime; hoisted out of the
        # per-packet emit path.
        self._flow_id = f"crosstraffic:{nic.host.name}:{self.src_port}"
        self._src_name = nic.host.name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False
        self._next_emit: Optional[ScheduledEvent] = None
        self._gaps: List[float] = []
        self._gap_i = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._next_emit = self.kernel.schedule(self._next_gap(), self._emit)

    def stop(self) -> None:
        self._running = False
        if self._next_emit is not None:
            self._next_emit.cancel()
            self._next_emit = None

    def run_for(self, duration: float) -> None:
        """Start now and stop automatically after ``duration`` seconds."""
        self.start()
        self.kernel.schedule(duration, self.stop)

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            src=self._src_name,
            dst=self.dst,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=Protocol.UDP,
            payload=None,
            payload_bytes=self.packet_bytes,
            dscp=self.dscp,
            flow_id=self._flow_id,
            created_at=self.kernel.now,
        )
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.nic.send(packet)
        event = self._next_emit
        if (event is not None and not event.cancelled
                and event._kernel is None):
            self.kernel.rearm(event, self._next_gap())
        else:
            # stop()+start() churn inside nic.send's downstream effects;
            # fall back to a fresh handle.
            self._next_emit = self.kernel.schedule(self._next_gap(),
                                                   self._emit)

    def _next_gap(self) -> float:
        i = self._gap_i
        gaps = self._gaps
        if i >= len(gaps):
            self._gaps = gaps = self._gap_batch(self.GAP_BATCH)
            i = 0
        self._gap_i = i + 1
        return gaps[i]

    def _gap_batch(self, n: int) -> List[float]:
        """The next ``n`` inter-packet gaps, oldest first.

        Subclasses with cheap closed forms override this with a bulk
        fill; the default simply calls :meth:`_gap` n times, which
        consumes any RNG in exactly the order the scalar path did.
        """
        gap = self._gap
        return [gap() for _ in range(n)]

    def _gap(self) -> float:
        raise NotImplementedError


class CbrTrafficSource(_TrafficSource):
    """Constant-bit-rate traffic: evenly spaced fixed-size packets."""

    def _gap(self) -> float:
        return ((self.packet_bytes + 40) * 8) / self.rate_bps

    def _gap_batch(self, n: int) -> List[float]:
        return [self._gap()] * n


class PoissonTrafficSource(_TrafficSource):
    """Poisson packet arrivals at the requested average rate."""

    def __init__(self, *args, rng: Optional[random.Random] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rng = rng or random.Random(0)

    def _gap(self) -> float:
        mean = ((self.packet_bytes + 40) * 8) / self.rate_bps
        return self.rng.expovariate(1.0 / mean)

    def _gap_batch(self, n: int) -> List[float]:
        mean = ((self.packet_bytes + 40) * 8) / self.rate_bps
        expovariate = self.rng.expovariate
        lambd = 1.0 / mean
        return [expovariate(lambd) for _ in range(n)]
