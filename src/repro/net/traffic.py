"""Competing network traffic generators.

The paper's experiments congest the network with constant-rate cross
traffic (16 Mbps in Figs 4-6; a 43.8 Mbps burst in Fig 7/Table 1).
:class:`CbrTrafficSource` reproduces that; :class:`PoissonTrafficSource`
adds a burstier alternative used by tests and ablations.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.net.diffserv import Dscp
from repro.net.nic import Nic
from repro.net.packet import MTU_BYTES, Packet, Protocol


class _TrafficSource:
    """Shared machinery: schedule packet emissions until stopped."""

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        dst: str,
        rate_bps: float,
        packet_bytes: int = MTU_BYTES,
        dscp: Dscp = Dscp.BE,
        dst_port: int = 9,  # the traditional discard port
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        self.kernel = kernel
        self.nic = nic
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.packet_bytes = int(packet_bytes)
        self.dscp = dscp
        self.dst_port = dst_port
        self.src_port = nic.allocate_port()
        # Constant for the source's lifetime; hoisted out of the
        # per-packet emit path.
        self._flow_id = f"crosstraffic:{nic.host.name}:{self.src_port}"
        self._src_name = nic.host.name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False
        self._next_emit: Optional[ScheduledEvent] = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._next_emit = self.kernel.schedule(self._gap(), self._emit)

    def stop(self) -> None:
        self._running = False
        if self._next_emit is not None:
            self._next_emit.cancel()
            self._next_emit = None

    def run_for(self, duration: float) -> None:
        """Start now and stop automatically after ``duration`` seconds."""
        self.start()
        self.kernel.schedule(duration, self.stop)

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            src=self._src_name,
            dst=self.dst,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=Protocol.UDP,
            payload=None,
            payload_bytes=self.packet_bytes,
            dscp=self.dscp,
            flow_id=self._flow_id,
            created_at=self.kernel.now,
        )
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.nic.send(packet)
        self._next_emit = self.kernel.schedule(self._gap(), self._emit)

    def _gap(self) -> float:
        raise NotImplementedError


class CbrTrafficSource(_TrafficSource):
    """Constant-bit-rate traffic: evenly spaced fixed-size packets."""

    def _gap(self) -> float:
        return ((self.packet_bytes + 40) * 8) / self.rate_bps


class PoissonTrafficSource(_TrafficSource):
    """Poisson packet arrivals at the requested average rate."""

    def __init__(self, *args, rng: Optional[random.Random] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rng = rng or random.Random(0)

    def _gap(self) -> float:
        mean = ((self.packet_bytes + 40) * 8) / self.rate_bps
        return self.rng.expovariate(1.0 / mean)
