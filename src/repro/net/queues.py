"""Egress queue disciplines.

Three disciplines cover the paper's experiments:

``FifoQueue``
    Plain tail-drop FIFO — the "best effort" control arms (Fig 4).

``DiffServQueue``
    Strict-priority bands selected by DSCP per-hop behaviour class —
    the priority-based network management arms (Figs 5, 6).

``GuaranteedRateQueue``
    Per-flow token-bucket policed reservations layered over a
    DiffServQueue — the IntServ/RSVP arms (Fig 7, Table 1).  Traffic
    conforming to an installed reservation is served ahead of
    everything else; non-conforming excess is demoted to its DSCP class
    (and thus competes with, and drowns in, the congestion it was
    supposed to be protected from).

All disciplines account drops and enqueue/dequeue counts so experiments
and tests can assert on loss behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from repro.sim.kernel import Kernel
from repro.sim.quantize import clamp
from repro.net.diffserv import PhbClass, classify, drop_precedence
from repro.net.packet import Packet


class TokenBucket:
    """A token bucket metering one reserved flow.

    Tokens are *bytes*; they accrue at ``rate_bps / 8`` per second up to
    ``depth_bytes``.  A packet conforms if the bucket currently holds at
    least its size.

    The stored token count satisfies ``0 <= _tokens <= depth_bytes`` at
    all times (the :mod:`repro.sim.quantize` policy): refill and
    consumption both clamp, so float accumulation across millions of
    refills can never drift the bucket outside its documented range.
    """

    def __init__(self, kernel: Kernel, rate_bps: float, depth_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError(f"token rate must be positive, got {rate_bps}")
        if depth_bytes <= 0:
            raise ValueError(f"bucket depth must be positive, got {depth_bytes}")
        self._kernel = kernel
        self.rate_bps = float(rate_bps)
        self.depth_bytes = int(depth_bytes)
        self._tokens = float(depth_bytes)
        self._last_update = kernel.now

    def _refill(self) -> None:
        now = self._kernel.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = clamp(
                self._tokens + elapsed * self.rate_bps / 8.0,
                0.0, self.depth_bytes,
            )
            self._last_update = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, nbytes: int) -> bool:
        """Consume ``nbytes`` tokens if available; returns conformance."""
        self._refill()
        if self._tokens >= nbytes:
            self._tokens = clamp(self._tokens - nbytes, 0.0, self.depth_bytes)
            return True
        return False


class QueueDiscipline:
    """Base class: bounded packet storage with drop accounting."""

    def __init__(self, name: str = "qdisc") -> None:
        self.name = name
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        #: Per-flow drop counts (observability for experiments).
        self.drops_by_flow: Dict[str, int] = {}
        #: Optional drop callback, e.g. for loss-reactive transports.
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # -- interface -----------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Store ``packet``; returns False (and accounts) on drop."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, if any."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- shared accounting ----------------------------------------------
    def _accept(self, packet: Packet) -> bool:
        self.enqueued += 1
        return True

    def _drop(self, packet: Packet) -> bool:
        self.dropped += 1
        self.drops_by_flow[packet.flow_id] = (
            self.drops_by_flow.get(packet.flow_id, 0) + 1
        )
        if self.on_drop is not None:
            self.on_drop(packet)
        return False

    def _record_dequeue(self, packet: Optional[Packet]) -> Optional[Packet]:
        if packet is not None:
            self.dequeued += 1
        return packet


class FifoQueue(QueueDiscipline):
    """Tail-drop FIFO bounded by packet count."""

    def __init__(self, capacity: int = 100, name: str = "fifo") -> None:
        super().__init__(name=name)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._queue: deque = deque()

    def enqueue(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            return self._drop(packet)
        self._queue.append(packet)
        return self._accept(packet)

    def dequeue(self) -> Optional[Packet]:
        packet = self._queue.popleft() if self._queue else None
        return self._record_dequeue(packet)

    def __len__(self) -> int:
        return len(self._queue)


class DiffServQueue(QueueDiscipline):
    """Strict-priority bands keyed by DSCP per-hop behaviour class.

    Each band is its own bounded tail-drop FIFO; dequeue always serves
    the most-preferred non-empty band.  This is the classic DiffServ
    priority-queueing PHB implementation: EF traffic starves best
    effort, which is exactly the protection the paper's Fig 6 arm uses.

    Within the Assured Forwarding bands, RFC 2597 drop precedence is
    honoured: as a band fills past 1/3 (2/3) of its capacity, arrivals
    with drop precedence 3 (2) are rejected first, so AFx1 traffic
    squeezes out AFx3 of the same class under pressure.
    """

    #: Band-fill fraction above which each AF drop precedence is
    #: rejected (precedence 1 only drops when the band is full).
    DROP_PRECEDENCE_THRESHOLDS = {1: 1.0, 2: 2.0 / 3.0, 3: 1.0 / 3.0}

    #: AF bands, where RFC 2597 drop precedence applies.
    _ASSURED_BANDS = frozenset((PhbClass.ASSURED4, PhbClass.ASSURED3,
                                PhbClass.ASSURED2, PhbClass.ASSURED1))

    def __init__(
        self,
        band_capacity: int = 100,
        name: str = "diffserv",
        capacities: Optional[Dict[PhbClass, int]] = None,
    ) -> None:
        super().__init__(name=name)
        self._bands: Dict[PhbClass, deque] = {phb: deque() for phb in PhbClass}
        self._capacities = {
            phb: (capacities or {}).get(phb, band_capacity) for phb in PhbClass
        }
        # Dequeue scans bands most- to least-preferred on every packet;
        # a precomputed deque list avoids re-iterating the enum class
        # (enum iteration is surprisingly expensive on this hot path).
        self._band_order = tuple(self._bands[phb] for phb in PhbClass)

    def enqueue(self, packet: Packet) -> bool:
        band = classify(packet.dscp)
        queue = self._bands[band]
        threshold = self._capacities[band]
        if band in self._ASSURED_BANDS:
            precedence = drop_precedence(packet.dscp)
            threshold *= self.DROP_PRECEDENCE_THRESHOLDS[precedence]
        if len(queue) >= threshold:
            return self._drop(packet)
        queue.append(packet)
        return self._accept(packet)

    def dequeue(self) -> Optional[Packet]:
        for queue in self._band_order:  # most- to least-preferred
            if queue:
                return self._record_dequeue(queue.popleft())
        return self._record_dequeue(None)

    def band_depth(self, phb: PhbClass) -> int:
        return len(self._bands[phb])

    def __len__(self) -> int:
        return sum(len(q) for q in self._bands.values())


class GuaranteedRateQueue(QueueDiscipline):
    """IntServ guaranteed-rate service over a DiffServ base.

    Flows with installed reservations are policed by per-flow token
    buckets at enqueue time:

    * conforming packets join the *reserved* queue, served strictly
      first (the integrated-services guarantee);
    * non-conforming packets are demoted into the underlying DiffServ
      bands according to their DSCP, i.e. excess traffic receives
      exactly the treatment it would have had with no reservation.

    Reservations are installed/removed by RSVP agents
    (:mod:`repro.net.intserv`) as RESV messages traverse the router.
    """

    def __init__(
        self,
        kernel: Kernel,
        band_capacity: int = 100,
        reserved_capacity: int = 400,
        name: str = "intserv",
    ) -> None:
        super().__init__(name=name)
        self._kernel = kernel
        self._reserved: deque = deque()
        self.reserved_capacity = int(reserved_capacity)
        self._base = DiffServQueue(band_capacity=band_capacity)
        # Base-queue drops (demotion-then-overflow) are folded into this
        # queue's books through the base's own on_drop hook, so every
        # drop increments drops_by_flow and fires self.on_drop exactly
        # once, whichever internal path rejected the packet.
        self._base.on_drop = self._mirror_base_drop
        self._buckets: Dict[str, TokenBucket] = {}
        #: Packets that conformed to a reservation (observability).
        self.conformed = 0
        #: Packets demoted for exceeding their reservation.
        self.demoted = 0

    # -- reservation management -----------------------------------------
    def install_reservation(
        self, flow_id: str, rate_bps: float, depth_bytes: int
    ) -> None:
        """Create/replace the token bucket policing ``flow_id``."""
        self._buckets[flow_id] = TokenBucket(self._kernel, rate_bps, depth_bytes)

    def remove_reservation(self, flow_id: str) -> None:
        self._buckets.pop(flow_id, None)

    def reserved_flows(self) -> Dict[str, TokenBucket]:
        return dict(self._buckets)

    # -- discipline -------------------------------------------------------
    def _mirror_base_drop(self, packet: Packet) -> None:
        self._drop(packet)

    def enqueue(self, packet: Packet) -> bool:
        bucket = self._buckets.get(packet.flow_id)
        if bucket is not None and bucket.try_consume(packet.size_bytes):
            if len(self._reserved) >= self.reserved_capacity:
                return self._drop(packet)
            self.conformed += 1
            self._reserved.append(packet)
            return self._accept(packet)
        if bucket is not None:
            self.demoted += 1
        accepted = self._base.enqueue(packet)
        if accepted:
            return self._accept(packet)
        # The base rejected it; its drop already mirrored into our books.
        return False

    def dequeue(self) -> Optional[Packet]:
        if self._reserved:
            return self._record_dequeue(self._reserved.popleft())
        packet = self._base.dequeue()
        return self._record_dequeue(packet)

    def __len__(self) -> int:
        return len(self._reserved) + len(self._base)
