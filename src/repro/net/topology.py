"""Network construction and routing.

The :class:`Network` builder wires hosts (via their NICs) and routers
into an arbitrary topology of full-duplex links, then computes static
shortest-path routes (hop count) for every host destination — the
simulated analogue of the testbed's statically configured LAN.

Queue disciplines are chosen *per link direction* at wiring time, which
is how experiments flip a topology between best-effort, DiffServ, and
IntServ behaviour without touching any other code.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Kernel
from repro.oskernel.host import Host
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.queues import QueueDiscipline
from repro.net.router import Router

#: Anything that terminates a link.
Device = Union[Nic, Router]
#: What callers may pass to identify a link endpoint.
Endpoint = Union[Host, Nic, Router, str]


class Network:
    """Builder and registry for one simulated network.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.oskernel import Host
    >>> kernel = Kernel()
    >>> net = Network(kernel)
    >>> a = Host(kernel, "a"); b = Host(kernel, "b")
    >>> net.attach_host(a); net.attach_host(b)  # doctest: +ELLIPSIS
    <Nic a.eth0>
    <Nic b.eth0>
    >>> r = net.add_router("r1")
    >>> _ = net.link(a, r); _ = net.link(r, b)
    >>> net.compute_routes()
    """

    def __init__(
        self,
        kernel: Kernel,
        default_bandwidth_bps: float = 10e6,
        default_delay: float = 50e-6,
    ) -> None:
        self.kernel = kernel
        self.default_bandwidth_bps = float(default_bandwidth_bps)
        self.default_delay = float(default_delay)
        self._devices: Dict[str, Device] = {}
        self._hosts: Dict[str, Host] = {}
        self._links: List[Link] = []
        # adjacency: device name -> [(neighbor name, local interface)]
        self._adjacency: Dict[str, List[Tuple[str, Interface]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def attach_host(self, host: Host) -> Nic:
        """Register ``host`` and give it a NIC."""
        if host.name in self._devices:
            raise ValueError(f"duplicate device name {host.name!r}")
        nic = Nic(self.kernel, host)
        self._devices[host.name] = nic
        self._hosts[host.name] = host
        self._adjacency[host.name] = []
        return nic

    def add_router(self, name: str) -> Router:
        if name in self._devices:
            raise ValueError(f"duplicate device name {name!r}")
        router = Router(self.kernel, name)
        self._devices[name] = router
        self._adjacency[name] = []
        return router

    def link(
        self,
        a: Endpoint,
        b: Endpoint,
        bandwidth_bps: Optional[float] = None,
        delay: Optional[float] = None,
        qdisc_a: Optional[QueueDiscipline] = None,
        qdisc_b: Optional[QueueDiscipline] = None,
    ) -> Link:
        """Wire a full-duplex link between two registered endpoints.

        ``qdisc_a`` shapes traffic *from a toward b*; ``qdisc_b`` the
        reverse direction.
        """
        dev_a = self._resolve(a)
        dev_b = self._resolve(b)
        iface_a = Interface(
            self.kernel, dev_a, f"{dev_a.name}->{dev_b.name}", qdisc=qdisc_a
        )
        iface_b = Interface(
            self.kernel, dev_b, f"{dev_b.name}->{dev_a.name}", qdisc=qdisc_b
        )
        dev_a.add_interface(iface_a)
        dev_b.add_interface(iface_b)
        link = Link(
            self.kernel,
            iface_a,
            iface_b,
            bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
            delay=self.default_delay if delay is None else delay,
        )
        self._links.append(link)
        self._adjacency[dev_a.name].append((dev_b.name, iface_a))
        self._adjacency[dev_b.name].append((dev_a.name, iface_b))
        return link

    def remove_link(self, a: Endpoint, b: Endpoint) -> Link:
        """Permanently unplug the link between ``a`` and ``b``.

        The link fails (notifying RSVP agents and routing listeners),
        is marked removed so it can never be restored, and disappears
        from the adjacency used by :meth:`compute_routes` /
        :meth:`path`.  Its interfaces and queues stay attached to the
        devices, so packets already queued on them remain accounted.
        """
        link = self.link_between(a, b)
        for endpoint in (link.a, link.b):
            self._adjacency[endpoint.owner.name] = [
                (name, iface)
                for name, iface in self._adjacency[endpoint.owner.name]
                if iface.link is not link
            ]
        if link.up:
            link.fail()
        link.removed = True
        return link

    def compute_routes(self) -> None:
        """(Re)build every router's routing table by hop-count BFS.

        Tables are cleared first: a destination that became unreachable
        after a topology change must lose its entry (and its packets be
        counted unroutable) rather than keep a stale egress into a dead
        link.  Links that are down or removed do not carry routes.
        """
        for device in self._devices.values():
            device.routes.clear()
        for host_name in self._hosts:
            self._route_toward(host_name)

    def _route_toward(self, destination: str) -> None:
        visited = {destination}
        frontier = deque([destination])
        while frontier:
            current = frontier.popleft()
            for neighbor, iface in self._adjacency[current]:
                if neighbor in visited:
                    continue
                if iface.link is not None and not iface.link.up:
                    continue
                visited.add(neighbor)
                device = self._devices[neighbor]
                egress = self._interface_toward(neighbor, current)
                device.set_route(destination, egress)
                # Hosts never forward transit traffic, so the search
                # may not continue *through* a NIC — only routers (and
                # the destination itself) extend the frontier.
                if isinstance(device, Router):
                    frontier.append(neighbor)

    def _interface_toward(self, device_name: str, neighbor: str) -> Interface:
        for name, interface in self._adjacency[device_name]:
            if name == neighbor:
                return interface
        raise KeyError(f"no link {device_name} -> {neighbor}")

    def enable_intserv(
        self,
        utilization_bound: float = 0.9,
        refresh_interval: Optional[float] = None,
    ) -> None:
        """Attach RSVP agents to every router and host NIC.

        Reservations only actually take hold on interfaces whose qdisc
        is a :class:`~repro.net.queues.GuaranteedRateQueue`; signaling
        still traverses everything else.

        ``refresh_interval`` opts in to RSVP soft-state: endpoints
        periodically re-send PATH/RESV and transit routers expire state
        that stops being refreshed.  The refresh timers keep the event
        heap non-empty, so simulations using it must run with an
        explicit ``until=``.
        """
        from repro.net.intserv import RsvpAgent  # local import: cycle

        for device in self._devices.values():
            if getattr(device, "rsvp_agent", None) is None:
                RsvpAgent(self.kernel, device,
                          utilization_bound=utilization_bound,
                          refresh_interval=refresh_interval)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _resolve(self, endpoint: Endpoint) -> Device:
        if isinstance(endpoint, Host):
            return self._devices[endpoint.name]
        if isinstance(endpoint, (Nic, Router)):
            return endpoint
        return self._devices[endpoint]

    def device(self, name: str) -> Device:
        return self._devices[name]

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def nic_of(self, host: Union[Host, str]) -> Nic:
        name = host.name if isinstance(host, Host) else host
        device = self._devices[name]
        if not isinstance(device, Nic):
            raise KeyError(f"{name!r} is not a host")
        return device

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def routers(self) -> List[Router]:
        return [d for d in self._devices.values() if isinstance(d, Router)]

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def link_between(self, a: Endpoint, b: Endpoint) -> Link:
        """The link directly joining two endpoints (KeyError if none)."""
        name_a = self._resolve(a).name
        name_b = self._resolve(b).name
        wanted = {name_a, name_b}
        for link in self._links:
            if {link.a.owner.name, link.b.owner.name} == wanted:
                return link
        raise KeyError(f"no link between {name_a!r} and {name_b!r}")

    def path(self, src: str, dst: str) -> List[str]:
        """Device names along the shortest path src -> dst (inclusive).

        Hosts are endpoints, never transit nodes, mirroring the
        forwarding behaviour of :meth:`repro.net.nic.Nic.receive`.
        """
        parents: Dict[str, str] = {}
        visited = {src}
        frontier = deque([src])
        while frontier:
            current = frontier.popleft()
            if current == dst:
                break
            if current != src and not isinstance(
                self._devices[current], Router
            ):
                continue  # no transit through hosts
            for neighbor, _ in self._adjacency[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    parents[neighbor] = current
                    frontier.append(neighbor)
        if dst not in visited:
            raise KeyError(f"no path {src} -> {dst}")
        result = [dst]
        while result[-1] != src:
            result.append(parents[result[-1]])
        return list(reversed(result))


# ----------------------------------------------------------------------
# Topology generators
# ----------------------------------------------------------------------
class GeneratedTopology:
    """What a generator built: router names and link endpoint pairs.

    Purely descriptive — the routers and links are already wired into
    the :class:`Network` the generator was given.
    """

    __slots__ = ("kind", "routers", "links", "params")

    def __init__(self, kind: str, routers: List[str],
                 links: List[Tuple[str, str]], params: Dict[str, object]):
        self.kind = kind
        self.routers = list(routers)
        self.links = list(links)
        self.params = dict(params)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GeneratedTopology {self.kind} routers={len(self.routers)} "
                f"links={len(self.links)}>")


def _wire(net: Network, pairs: List[Tuple[str, str]],
          qdisc_factory: Optional[Callable[[], QueueDiscipline]],
          bandwidth_bps: Optional[float], delay: Optional[float]) -> None:
    for a, b in pairs:
        net.link(a, b, bandwidth_bps=bandwidth_bps, delay=delay,
                 qdisc_a=qdisc_factory() if qdisc_factory else None,
                 qdisc_b=qdisc_factory() if qdisc_factory else None)


def waxman_topology(
    net: Network,
    n: int,
    seed: int = 1,
    alpha: float = 0.55,
    beta: float = 0.6,
    prefix: str = "w",
    qdisc_factory: Optional[Callable[[], QueueDiscipline]] = None,
    bandwidth_bps: Optional[float] = None,
    delay: Optional[float] = None,
) -> GeneratedTopology:
    """Seeded random Waxman graph over ``n`` routers.

    Nodes are dropped uniformly on the unit square; an edge (i, j)
    exists with probability ``alpha * exp(-d(i,j) / (beta * L))`` where
    ``L`` is the graph diameter in Euclidean terms.  A spanning cycle
    ``0-1-...-(n-1)-0`` is always added, so every generated graph is
    2-edge-connected: no single backbone failure can partition it.
    All randomness comes from ``random.Random(seed)`` — same seed,
    same edge list, byte-identical routing tables.
    """
    if n < 3:
        raise ValueError(f"waxman needs n >= 3, got {n}")
    rng = random.Random(seed)
    width = len(str(n - 1))
    names = [f"{prefix}{i:0{width}d}" for i in range(n)]
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    span = max(
        math.dist(positions[i], positions[j])
        for i in range(n) for j in range(i + 1, n)
    )
    pairs: List[Tuple[str, str]] = []
    chosen = set()
    for i in range(n):
        for j in range(i + 1, n):
            d = math.dist(positions[i], positions[j])
            if rng.random() < alpha * math.exp(-d / (beta * span)):
                pairs.append((names[i], names[j]))
                chosen.add((i, j))
    for i in range(n):
        j = (i + 1) % n
        key = (min(i, j), max(i, j))
        if key not in chosen:
            chosen.add(key)
            pairs.append((names[key[0]], names[key[1]]))
    for name in names:
        net.add_router(name)
    _wire(net, pairs, qdisc_factory, bandwidth_bps, delay)
    return GeneratedTopology(
        "waxman", names, pairs,
        {"n": n, "seed": seed, "alpha": alpha, "beta": beta})


def fat_tree_topology(
    net: Network,
    k: int = 4,
    prefix: str = "ft",
    qdisc_factory: Optional[Callable[[], QueueDiscipline]] = None,
    bandwidth_bps: Optional[float] = None,
    delay: Optional[float] = None,
) -> GeneratedTopology:
    """A k-ary fat-tree: (k/2)^2 cores, k pods of k/2 agg + k/2 edge.

    Edge switch *e* in a pod links to every aggregation switch in that
    pod; aggregation switch *a* links to cores ``a*(k/2) ..
    (a+1)*(k/2)-1`` — the standard rearrangeably non-blocking wiring,
    deterministic by construction (no seed).
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree needs an even k >= 2, got {k}")
    half = k // 2
    cores = [f"{prefix}c{i:02d}" for i in range(half * half)]
    names = list(cores)
    pairs: List[Tuple[str, str]] = []
    for pod in range(k):
        aggs = [f"{prefix}p{pod}a{i}" for i in range(half)]
        edges = [f"{prefix}p{pod}e{i}" for i in range(half)]
        names.extend(aggs)
        names.extend(edges)
        for edge in edges:
            for agg in aggs:
                pairs.append((agg, edge))
        for a, agg in enumerate(aggs):
            for c in range(a * half, (a + 1) * half):
                pairs.append((cores[c], agg))
    for name in names:
        net.add_router(name)
    _wire(net, pairs, qdisc_factory, bandwidth_bps, delay)
    return GeneratedTopology("fat_tree", names, pairs, {"k": k})


def wan_topology(
    net: Network,
    pops: int = 4,
    routers_per_pop: int = 3,
    prefix: str = "pop",
    qdisc_factory: Optional[Callable[[], QueueDiscipline]] = None,
    bandwidth_bps: Optional[float] = None,
    delay: Optional[float] = None,
) -> GeneratedTopology:
    """Multi-PoP WAN: per-PoP router rings joined by a gateway ring.

    Each PoP is a ring of ``routers_per_pop`` routers; router 0 of each
    PoP is its gateway.  Gateways form their own ring, plus antipodal
    chords when there are at least five PoPs, so the backbone survives
    any single inter-PoP link failure.  Deterministic (no seed).
    """
    if pops < 3:
        raise ValueError(f"wan needs >= 3 pops, got {pops}")
    if routers_per_pop < 1:
        raise ValueError("wan needs >= 1 router per pop")
    names: List[str] = []
    pairs: List[Tuple[str, str]] = []
    for pop in range(pops):
        local = [f"{prefix}{pop}r{i}" for i in range(routers_per_pop)]
        names.extend(local)
        if routers_per_pop == 2:
            pairs.append((local[0], local[1]))
        elif routers_per_pop >= 3:
            for i in range(routers_per_pop):
                pairs.append((local[i], local[(i + 1) % routers_per_pop]))
    gateways = [f"{prefix}{pop}r0" for pop in range(pops)]
    for pop in range(pops):
        pairs.append((gateways[pop], gateways[(pop + 1) % pops]))
    if pops >= 5:
        for pop in range(pops // 2):
            pairs.append((gateways[pop], gateways[pop + pops // 2]))
    for name in names:
        net.add_router(name)
    _wire(net, pairs, qdisc_factory, bandwidth_bps, delay)
    return GeneratedTopology(
        "wan", names, pairs,
        {"pops": pops, "routers_per_pop": routers_per_pop})


def generate_topology(
    net: Network,
    kind: str,
    routers: int,
    seed: int = 1,
    qdisc_factory: Optional[Callable[[], QueueDiscipline]] = None,
    bandwidth_bps: Optional[float] = None,
    delay: Optional[float] = None,
) -> GeneratedTopology:
    """Build a named topology family sized to about ``routers`` nodes.

    ``waxman`` hits the count exactly; ``fattree`` rounds up to the
    nearest valid ``5k^2/4``; ``wan`` rounds up to a whole number of
    PoPs.
    """
    if kind == "waxman":
        return waxman_topology(
            net, routers, seed=seed, qdisc_factory=qdisc_factory,
            bandwidth_bps=bandwidth_bps, delay=delay)
    if kind == "fattree":
        k = 2
        while 5 * k * k // 4 < routers:
            k += 2
        return fat_tree_topology(
            net, k, qdisc_factory=qdisc_factory,
            bandwidth_bps=bandwidth_bps, delay=delay)
    if kind == "wan":
        per_pop = 4
        pops = max(3, -(-routers // per_pop))
        return wan_topology(
            net, pops=pops, routers_per_pop=per_pop,
            qdisc_factory=qdisc_factory,
            bandwidth_bps=bandwidth_bps, delay=delay)
    raise ValueError(
        f"unknown topology kind {kind!r}; expected waxman|fattree|wan")
