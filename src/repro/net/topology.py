"""Network construction and routing.

The :class:`Network` builder wires hosts (via their NICs) and routers
into an arbitrary topology of full-duplex links, then computes static
shortest-path routes (hop count) for every host destination — the
simulated analogue of the testbed's statically configured LAN.

Queue disciplines are chosen *per link direction* at wiring time, which
is how experiments flip a topology between best-effort, DiffServ, and
IntServ behaviour without touching any other code.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.kernel import Kernel
from repro.oskernel.host import Host
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.queues import QueueDiscipline
from repro.net.router import Router

#: Anything that terminates a link.
Device = Union[Nic, Router]
#: What callers may pass to identify a link endpoint.
Endpoint = Union[Host, Nic, Router, str]


class Network:
    """Builder and registry for one simulated network.

    Example
    -------
    >>> from repro.sim import Kernel
    >>> from repro.oskernel import Host
    >>> kernel = Kernel()
    >>> net = Network(kernel)
    >>> a = Host(kernel, "a"); b = Host(kernel, "b")
    >>> net.attach_host(a); net.attach_host(b)  # doctest: +ELLIPSIS
    <Nic a.eth0>
    <Nic b.eth0>
    >>> r = net.add_router("r1")
    >>> _ = net.link(a, r); _ = net.link(r, b)
    >>> net.compute_routes()
    """

    def __init__(
        self,
        kernel: Kernel,
        default_bandwidth_bps: float = 10e6,
        default_delay: float = 50e-6,
    ) -> None:
        self.kernel = kernel
        self.default_bandwidth_bps = float(default_bandwidth_bps)
        self.default_delay = float(default_delay)
        self._devices: Dict[str, Device] = {}
        self._hosts: Dict[str, Host] = {}
        self._links: List[Link] = []
        # adjacency: device name -> [(neighbor name, local interface)]
        self._adjacency: Dict[str, List[Tuple[str, Interface]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def attach_host(self, host: Host) -> Nic:
        """Register ``host`` and give it a NIC."""
        if host.name in self._devices:
            raise ValueError(f"duplicate device name {host.name!r}")
        nic = Nic(self.kernel, host)
        self._devices[host.name] = nic
        self._hosts[host.name] = host
        self._adjacency[host.name] = []
        return nic

    def add_router(self, name: str) -> Router:
        if name in self._devices:
            raise ValueError(f"duplicate device name {name!r}")
        router = Router(self.kernel, name)
        self._devices[name] = router
        self._adjacency[name] = []
        return router

    def link(
        self,
        a: Endpoint,
        b: Endpoint,
        bandwidth_bps: Optional[float] = None,
        delay: Optional[float] = None,
        qdisc_a: Optional[QueueDiscipline] = None,
        qdisc_b: Optional[QueueDiscipline] = None,
    ) -> Link:
        """Wire a full-duplex link between two registered endpoints.

        ``qdisc_a`` shapes traffic *from a toward b*; ``qdisc_b`` the
        reverse direction.
        """
        dev_a = self._resolve(a)
        dev_b = self._resolve(b)
        iface_a = Interface(
            self.kernel, dev_a, f"{dev_a.name}->{dev_b.name}", qdisc=qdisc_a
        )
        iface_b = Interface(
            self.kernel, dev_b, f"{dev_b.name}->{dev_a.name}", qdisc=qdisc_b
        )
        dev_a.add_interface(iface_a)
        dev_b.add_interface(iface_b)
        link = Link(
            self.kernel,
            iface_a,
            iface_b,
            bandwidth_bps=bandwidth_bps or self.default_bandwidth_bps,
            delay=self.default_delay if delay is None else delay,
        )
        self._links.append(link)
        self._adjacency[dev_a.name].append((dev_b.name, iface_a))
        self._adjacency[dev_b.name].append((dev_a.name, iface_b))
        return link

    def compute_routes(self) -> None:
        """(Re)build every router's routing table by hop-count BFS."""
        for host_name in self._hosts:
            self._route_toward(host_name)

    def _route_toward(self, destination: str) -> None:
        visited = {destination}
        frontier = deque([destination])
        while frontier:
            current = frontier.popleft()
            for neighbor, _ in self._adjacency[current]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                device = self._devices[neighbor]
                egress = self._interface_toward(neighbor, current)
                device.set_route(destination, egress)
                # Hosts never forward transit traffic, so the search
                # may not continue *through* a NIC — only routers (and
                # the destination itself) extend the frontier.
                if isinstance(device, Router):
                    frontier.append(neighbor)

    def _interface_toward(self, device_name: str, neighbor: str) -> Interface:
        for name, interface in self._adjacency[device_name]:
            if name == neighbor:
                return interface
        raise KeyError(f"no link {device_name} -> {neighbor}")

    def enable_intserv(
        self,
        utilization_bound: float = 0.9,
        refresh_interval: Optional[float] = None,
    ) -> None:
        """Attach RSVP agents to every router and host NIC.

        Reservations only actually take hold on interfaces whose qdisc
        is a :class:`~repro.net.queues.GuaranteedRateQueue`; signaling
        still traverses everything else.

        ``refresh_interval`` opts in to RSVP soft-state: endpoints
        periodically re-send PATH/RESV and transit routers expire state
        that stops being refreshed.  The refresh timers keep the event
        heap non-empty, so simulations using it must run with an
        explicit ``until=``.
        """
        from repro.net.intserv import RsvpAgent  # local import: cycle

        for device in self._devices.values():
            if getattr(device, "rsvp_agent", None) is None:
                RsvpAgent(self.kernel, device,
                          utilization_bound=utilization_bound,
                          refresh_interval=refresh_interval)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _resolve(self, endpoint: Endpoint) -> Device:
        if isinstance(endpoint, Host):
            return self._devices[endpoint.name]
        if isinstance(endpoint, (Nic, Router)):
            return endpoint
        return self._devices[endpoint]

    def device(self, name: str) -> Device:
        return self._devices[name]

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def nic_of(self, host: Union[Host, str]) -> Nic:
        name = host.name if isinstance(host, Host) else host
        device = self._devices[name]
        if not isinstance(device, Nic):
            raise KeyError(f"{name!r} is not a host")
        return device

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def routers(self) -> List[Router]:
        return [d for d in self._devices.values() if isinstance(d, Router)]

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def link_between(self, a: Endpoint, b: Endpoint) -> Link:
        """The link directly joining two endpoints (KeyError if none)."""
        name_a = self._resolve(a).name
        name_b = self._resolve(b).name
        wanted = {name_a, name_b}
        for link in self._links:
            if {link.a.owner.name, link.b.owner.name} == wanted:
                return link
        raise KeyError(f"no link between {name_a!r} and {name_b!r}")

    def path(self, src: str, dst: str) -> List[str]:
        """Device names along the shortest path src -> dst (inclusive).

        Hosts are endpoints, never transit nodes, mirroring the
        forwarding behaviour of :meth:`repro.net.nic.Nic.receive`.
        """
        parents: Dict[str, str] = {}
        visited = {src}
        frontier = deque([src])
        while frontier:
            current = frontier.popleft()
            if current == dst:
                break
            if current != src and not isinstance(
                self._devices[current], Router
            ):
                continue  # no transit through hosts
            for neighbor, _ in self._adjacency[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    parents[neighbor] = current
                    frontier.append(neighbor)
        if dst not in visited:
            raise KeyError(f"no path {src} -> {dst}")
        result = [dst]
        while result[-1] != src:
            result.append(parents[result[-1]])
        return list(reversed(result))
