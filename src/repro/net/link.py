"""Interfaces and point-to-point links.

An :class:`Interface` is one device's attachment to a link: it owns the
egress queue discipline and a transmitter that serializes packets at
the link bandwidth.  A :class:`Link` wires two interfaces together with
a propagation delay, giving a full-duplex point-to-point segment (each
direction has its own queue and transmitter, like real Ethernet).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.kernel import Kernel
from repro.net.packet import Packet
from repro.net.queues import FifoQueue, QueueDiscipline

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Device


class Interface:
    """A device port: egress qdisc + transmitter onto one link direction."""

    __slots__ = ("kernel", "owner", "name", "qdisc", "link", "peer",
                 "_busy", "bits_sent", "packets_received", "_tx_event",
                 "fluid")

    def __init__(
        self,
        kernel: Kernel,
        owner: "Device",
        name: str,
        qdisc: Optional[QueueDiscipline] = None,
    ) -> None:
        self.kernel = kernel
        self.owner = owner
        self.name = name
        self.qdisc = qdisc if qdisc is not None else FifoQueue()
        self.link: Optional["Link"] = None
        self.peer: Optional["Interface"] = None
        self._busy = False
        #: The transmitter's completion event, re-armed per packet (at
        #: most one transmission is in flight per interface, so the
        #: handle is reusable the moment it has fired).
        self._tx_event = None
        #: Bits pushed onto the wire (observability).
        self.bits_sent = 0
        #: Packets fully received from the wire.
        self.packets_received = 0
        #: Hybrid-mode coupling: a :class:`repro.fluid.engine.FluidLink`
        #: whose aggregate consumes part of this egress; when set, the
        #: transmitter serializes at the fluid residual rate instead of
        #: the raw link bandwidth.  None everywhere except opt-in
        #: hybrid scenarios, so the packet-only path is untouched.
        self.fluid = None

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False if tail-dropped."""
        if self.link is None:
            raise RuntimeError(f"interface {self.name!r} is not linked")
        accepted = self.qdisc.enqueue(packet)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant(
                "net", "hop.enqueue" if accepted else "hop.drop",
                flow=packet.flow_id, packet=packet.packet_id,
                iface=f"{self.owner.name}.{self.name}",
                dscp=packet.dscp.name, depth=len(self.qdisc),
            )
        if accepted:
            self._kick()
        return accepted

    def _kick(self) -> None:
        if self._busy:
            return
        assert self.link is not None
        if not self.link.up:
            # The transmitter idles while the link is down; restore()
            # kicks it again.  Queued packets survive the outage.
            return
        packet = self.qdisc.dequeue()
        if packet is None:
            return
        self._busy = True
        if self.fluid is not None:
            tx_seconds = packet.size_bits / self.fluid.packet_residual_bps
        else:
            tx_seconds = packet.size_bits / self.link.bandwidth_bps
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant(
                "net", "hop.dequeue",
                flow=packet.flow_id, packet=packet.packet_id,
                iface=f"{self.owner.name}.{self.name}",
                dscp=packet.dscp.name, tx=tx_seconds,
            )
        event = self._tx_event
        if (event is not None and not event.cancelled
                and event._kernel is None):
            self.kernel.rearm(event, tx_seconds, packet)
        else:
            self._tx_event = self.kernel.schedule(
                tx_seconds, self._transmit_done, packet)

    def _transmit_done(self, packet: Packet) -> None:
        self._busy = False
        assert self.link is not None and self.peer is not None
        if not self.link.up:
            # The link died mid-transmission: the frame is lost.
            self.link.packets_lost += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant(
                    "net", "hop.loss",
                    flow=packet.flow_id, packet=packet.packet_id,
                    iface=f"{self.owner.name}.{self.name}",
                )
            self._kick()
            return
        if self.link.loss_probability > 0.0 and self.link.loss_rng is not None \
                and self.link.loss_rng.random() < self.link.loss_probability:
            # Injected correlated loss (e.g. a fault-plan loss burst):
            # the frame made it onto the wire but not across it.
            self.link.packets_lost += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant(
                    "net", "hop.loss",
                    flow=packet.flow_id, packet=packet.packet_id,
                    iface=f"{self.owner.name}.{self.name}",
                    reason="burst",
                )
            self._kick()
            return
        self.bits_sent += packet.size_bits
        self.kernel.schedule(self.link.delay, self.peer._deliver, packet)
        self._kick()

    def _deliver(self, packet: Packet) -> None:
        self.packets_received += 1
        packet.hops += 1
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant(
                "net", "hop.rx",
                flow=packet.flow_id, packet=packet.packet_id,
                iface=f"{self.owner.name}.{self.name}",
                dscp=packet.dscp.name, hops=packet.hops,
            )
        self.owner.receive(packet, self)

    @property
    def queue_depth(self) -> int:
        return len(self.qdisc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Interface {self.owner.name}.{self.name}>"


class Link:
    """A full-duplex point-to-point link between two interfaces.

    Parameters
    ----------
    bandwidth_bps:
        Serialization rate in bits per second (e.g. ``10e6`` for the
        paper's 10 Mbps Ethernet).
    delay:
        One-way propagation delay in seconds.
    """

    __slots__ = ("kernel", "bandwidth_bps", "nominal_bandwidth_bps",
                 "delay", "a", "b", "up",
                 "packets_lost", "loss_probability", "loss_rng",
                 "listeners", "removed")

    def __init__(
        self,
        kernel: Kernel,
        a: Interface,
        b: Interface,
        bandwidth_bps: float,
        delay: float = 50e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.kernel = kernel
        self.bandwidth_bps = float(bandwidth_bps)
        #: As-built rate: admission decisions were made against this;
        #: fault-layer degrades mutate ``bandwidth_bps`` only.
        self.nominal_bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.a = a
        self.b = b
        #: Failure-injection state; see :meth:`fail` / :meth:`restore`.
        self.up = True
        #: Packets lost on the wire while the link was down.
        self.packets_lost = 0
        #: Injected per-packet loss (fault layer); active only while a
        #: loss-burst fault holds the link.  Draws come from a named
        #: RNG stream so runs stay deterministic.
        self.loss_probability = 0.0
        self.loss_rng = None
        #: State-change callbacks ``cb(link, up)``; fired on every
        #: up -> down and down -> up transition.  The link-state
        #: routing protocol subscribes here to learn about adjacency
        #: changes the way a real router learns from carrier loss.
        self.listeners = []
        #: Permanently unplugged (see ``Network.remove_link``); a
        #: removed link never comes back up.
        self.removed = False
        a.link = self
        b.link = self
        a.peer = b
        b.peer = a

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def add_listener(self, callback) -> None:
        """Subscribe ``callback(link, up)`` to state transitions."""
        self.listeners.append(callback)

    def fail(self) -> None:
        """Cut the link: everything currently on (or put on) the wire
        is lost until :meth:`restore`.  Queued packets stay queued."""
        was_up = self.up
        self.up = False
        if self.a.fluid is not None:
            self.a.fluid.on_link_state(False)
        if self.b.fluid is not None:
            self.b.fluid.on_link_state(False)
        # Release any installed reservation rate on the dead egresses
        # *synchronously*: the booked rate would otherwise over-report
        # until soft-state expiry and the link-budget ledger could go
        # negative on re-admission after reroute.
        for iface in (self.a, self.b):
            agent = getattr(iface.owner, "rsvp_agent", None)
            if agent is not None:
                agent.on_link_down(iface)
        if was_up:
            for callback in self.listeners:
                callback(self, False)

    def restore(self) -> None:
        """Bring the link back and restart both transmitters."""
        if self.up or self.removed:
            return
        self.up = True
        if self.a.fluid is not None:
            self.a.fluid.on_link_state(True)
        if self.b.fluid is not None:
            self.b.fluid.on_link_state(True)
        self.a._kick()
        self.b._kick()
        for callback in self.listeners:
            callback(self, True)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.a.owner.name}<->{self.b.owner.name} "
            f"{self.bandwidth_bps/1e6:.1f}Mbps>"
        )
