"""Link-state routing: LSA flooding + Dijkstra SPF over the topology.

Replaces the one-shot static :meth:`Network.compute_routes` with live
per-router tables that react to link failures and repairs — the layer
the paper's adaptation story was missing between the fault injector
and the QuO contract: when a backbone link dies, routers must *learn*
about it and heal the forwarding plane before any amount of reserve or
shed-based adaptation can matter.

Protocol model
--------------
Each router originates a link-state advertisement (LSA) describing its
up adjacencies — neighbor routers (with a cost) and directly attached
stub hosts — under a monotonically increasing sequence number.  LSAs
flood hop-by-hop: a router that receives a fresher LSA than the copy
in its link-state database (LSDB) stores it, schedules an SPF
recomputation, and re-floods to every other up neighbor; stale copies
are dropped (the sequence number is the dedup).  Flooding rides the
kernel directly with per-hop latency ``link.delay + LSA_PROC_DELAY``
rather than as data packets: signaling is consumed and re-created at
every hop, which would otherwise register as per-packet-id
conservation leaks in the check suite.

Adjacency changes come from :class:`~repro.net.link.Link` state
listeners — carrier loss and recovery, exactly what a real IGP keys
off — so the fault injector's ``link_flap`` / ``node_crash`` /
``link_down`` events drive re-origination with no extra wiring.

SPF recomputations are coalesced behind ``spf_delay`` (an OSPF-style
hold-down: both endpoints' LSAs from one failure arrive within the
window and trigger a single recomputation).  Route installation is
clear-and-rebuild.  When a recomputation *changes* a router's table,
convergence listeners fire — RSVP make-before-break re-signaling
(:meth:`~repro.net.intserv.RsvpAgent.resignal_all`) hangs off this.

Determinism
-----------
Equal-cost paths break ties by ``(cost, first-hop neighbor name)``:
the Dijkstra heap carries ``(cost, first_hop, node)`` tuples, so of
all shortest paths the one through the lexicographically smallest
first hop settles first.  Tables are therefore identical across runs,
across ``--jobs`` workers, and across scheduler backends.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.sim.kernel import Kernel
from repro.net.link import Link
from repro.net.router import Router
from repro.net.topology import Network

__all__ = [
    "Lsa",
    "LinkStateRouting",
    "ReservationResignaler",
    "install_spf_routes",
    "predict_path",
    "spf_first_hops",
    "seq_newer",
    "SEQ_MODULUS",
]

#: Per-hop LSA processing latency added on top of the link delay.
LSA_PROC_DELAY = 1e-4

#: LSA sequence numbers live in a bounded space (like a 16-bit OSPF-ish
#: counter) so a long-lived network must compare them wraparound-safely.
SEQ_MODULUS = 1 << 16


def seq_newer(a: int, b: int) -> bool:
    """Is seq ``a`` fresher than ``b`` under serial-number arithmetic?

    RFC 1982-style: ``a`` is newer when it sits less than half the
    sequence space ahead of ``b`` (so ``0`` is newer than ``65535``).
    Equal seqs are never "newer".
    """
    if a == b:
        return False
    return ((a - b) % SEQ_MODULUS) < SEQ_MODULUS // 2


class Lsa:
    """One router's link-state advertisement.

    ``neighbors`` are ``(router name, cost)`` pairs, ``stubs`` the
    directly attached host names; both sorted so two LSAs describing
    the same adjacency compare equal field-by-field.
    """

    __slots__ = ("origin", "seq", "neighbors", "stubs")

    def __init__(self, origin: str, seq: int,
                 neighbors: Tuple[Tuple[str, float], ...],
                 stubs: Tuple[str, ...]) -> None:
        self.origin = origin
        self.seq = seq
        self.neighbors = neighbors
        self.stubs = stubs

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Lsa {self.origin} seq={self.seq} "
                f"nbrs={[n for n, _ in self.neighbors]} "
                f"stubs={list(self.stubs)}>")


def spf_first_hops(lsdb: Dict[str, Lsa], origin: str
                   ) -> Dict[str, Tuple[float, str]]:
    """Dijkstra over an LSDB: destination -> (cost, first-hop name).

    Only two-way adjacencies count (both endpoints must advertise the
    edge, the standard LSDB bidirectionality check), so a half-learned
    failure can never route traffic into a link one side knows is
    dead.  Stub hosts sit one unit of cost behind their router and
    never carry transit.  Ties break by ``(cost, first-hop name)``.
    """
    neighbors: Dict[str, List[Tuple[str, float]]] = {}
    for name, lsa in lsdb.items():
        mutual = []
        for peer, cost in lsa.neighbors:
            peer_lsa = lsdb.get(peer)
            if peer_lsa is not None and any(
                    back == name for back, _ in peer_lsa.neighbors):
                mutual.append((peer, cost))
        neighbors[name] = sorted(mutual)
    best: Dict[str, Tuple[float, str]] = {}
    heap: List[Tuple[float, str, str]] = [(0.0, "", origin)]
    while heap:
        cost, first_hop, node = heapq.heappop(heap)
        if node in best:
            continue
        best[node] = (cost, first_hop)
        for peer, edge_cost in neighbors.get(node, ()):
            if peer not in best:
                heapq.heappush(
                    heap, (cost + edge_cost, first_hop or peer, peer))
    table: Dict[str, Tuple[float, str]] = {}
    for name, lsa in lsdb.items():
        reached = best.get(name)
        if reached is None:
            continue
        router_cost, router_fh = reached
        for host in lsa.stubs:
            candidate = (router_cost + 1.0, router_fh or host)
            incumbent = table.get(host)
            if incumbent is None or candidate < incumbent:
                table[host] = candidate
    for name, reached in best.items():
        if name != origin:
            table[name] = reached
    return table


class _Node:
    """Per-router protocol state."""

    __slots__ = ("router", "lsdb", "seq", "spf_pending", "installed_at")

    def __init__(self, router: Router) -> None:
        self.router = router
        self.lsdb: Dict[str, Lsa] = {}
        self.seq = 0
        self.spf_pending = False
        #: origin -> kernel time its LSA was (re)installed, for max-age
        #: expiry.  Only populated when aging is enabled.
        self.installed_at: Dict[str, float] = {}


class LinkStateRouting:
    """The routing engine: one instance drives every router in a net.

    ``start()`` seeds every router with the already-converged LSDB and
    installs the initial tables synchronously (bringing a cold network
    through a full bootstrap flood would add nothing but events); from
    then on link state changes re-originate, flood, and re-converge
    through simulated time.
    """

    def __init__(self, kernel: Kernel, network: Network,
                 spf_delay: float = 0.05,
                 max_age: Optional[float] = None,
                 refresh_interval: Optional[float] = None) -> None:
        self.kernel = kernel
        self.network = network
        self.spf_delay = float(spf_delay)
        #: Opt-in LSA aging: a foreign LSA not refreshed for this long
        #: is withdrawn from the LSDB (so a long-dead router's
        #: adjacencies cannot pin routes forever).  ``None`` (the
        #: default) disables both aging and refresh — existing
        #: experiments are event-for-event unchanged.
        self.max_age = None if max_age is None else float(max_age)
        if refresh_interval is None and self.max_age is not None:
            refresh_interval = self.max_age / 3.0
        self.refresh_interval = (None if refresh_interval is None
                                 else float(refresh_interval))
        if (self.max_age is not None
                and self.refresh_interval >= self.max_age):
            raise ValueError("refresh_interval must be < max_age")
        self.nodes: Dict[str, _Node] = {}
        self._listeners: List[Callable[[Router], None]] = []
        self._started = False
        self._refresh_event = None
        self._age_event = None
        #: Observability counters.
        self.spf_runs = 0
        self.lsas_originated = 0
        self.lsas_flooded = 0
        self.lsas_refreshed = 0
        self.lsas_expired = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Subscribe to link state and install converged tables."""
        if self._started:
            return
        self._started = True
        for router in sorted(self.network.routers, key=lambda r: r.name):
            self.nodes[router.name] = _Node(router)
        for link in self.network.links:
            link.add_listener(self._on_link_state)
        seed: Dict[str, Lsa] = {}
        for name, node in sorted(self.nodes.items()):
            node.seq = 1
            seed[name] = self._build_lsa(name)
        for name, node in sorted(self.nodes.items()):
            node.lsdb = dict(seed)
            if self.max_age is not None:
                now = self.kernel.now
                node.installed_at = {origin: now for origin in seed}
            self._run_spf(node, notify=False)
        if self.max_age is not None:
            self._refresh_event = self.kernel.schedule(
                self.refresh_interval, self._refresh_tick)
            self._age_event = self.kernel.schedule(
                self.max_age / 4.0, self._age_tick)

    def stop(self) -> None:
        """Cancel the aging/refresh timers (bounded-run teardown)."""
        if self._refresh_event is not None:
            self._refresh_event.cancel()
            self._refresh_event = None
        if self._age_event is not None:
            self._age_event.cancel()
            self._age_event = None

    def add_convergence_listener(
            self, callback: Callable[[Router], None]) -> None:
        """``callback(router)`` fires when an SPF run changed a table."""
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    # LSA origination and flooding
    # ------------------------------------------------------------------
    def _build_lsa(self, name: str) -> Lsa:
        neighbors: List[Tuple[str, float]] = []
        stubs: List[str] = []
        for peer, iface in self.network._adjacency[name]:
            link = iface.link
            if link is None or not link.up:
                continue
            if isinstance(self.network.device(peer), Router):
                neighbors.append((peer, 1.0))
            else:
                stubs.append(peer)
        return Lsa(name, self.nodes[name].seq,
                   tuple(sorted(neighbors)), tuple(sorted(stubs)))

    def _on_link_state(self, link: Link, up: bool) -> None:
        for iface in (link.a, link.b):
            if iface.owner.name in self.nodes:
                self._originate(iface.owner.name)

    def _originate(self, name: str) -> None:
        node = self.nodes[name]
        node.seq = (node.seq + 1) % SEQ_MODULUS
        lsa = self._build_lsa(name)
        self.lsas_originated += 1
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "lsa.originate", router=name, seq=lsa.seq,
                           neighbors=len(lsa.neighbors))
        self._accept(node, lsa, learned_from=None)

    def _accept(self, node: _Node, lsa: Lsa,
                learned_from: Optional[str]) -> None:
        current = node.lsdb.get(lsa.origin)
        if current is not None and not seq_newer(lsa.seq, current.seq):
            return
        node.lsdb[lsa.origin] = lsa
        if self.max_age is not None:
            node.installed_at[lsa.origin] = self.kernel.now
        self._schedule_spf(node)
        # Re-flood to every up router neighbor except the one the LSA
        # came from (split horizon).
        for peer, iface in sorted(self.network._adjacency[node.router.name],
                                  key=lambda entry: entry[0]):
            if peer == learned_from or peer not in self.nodes:
                continue
            link = iface.link
            if link is None or not link.up:
                continue
            self.lsas_flooded += 1
            self.kernel.schedule(
                link.delay + LSA_PROC_DELAY, self._deliver,
                peer, lsa, node.router.name)

    def _deliver(self, to_name: str, lsa: Lsa, from_name: str) -> None:
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "lsa.flood", origin=lsa.origin, seq=lsa.seq,
                           frm=from_name, to=to_name)
        self._accept(self.nodes[to_name], lsa, learned_from=from_name)

    # ------------------------------------------------------------------
    # Aging / refresh (opt-in via max_age)
    # ------------------------------------------------------------------
    def _refresh_tick(self) -> None:
        """Every live router re-originates, resetting its age everywhere."""
        for name in sorted(self.nodes):
            self.lsas_refreshed += 1
            self._originate(name)
        self._refresh_event = self.kernel.schedule(
            self.refresh_interval, self._refresh_tick)

    def _age_tick(self) -> None:
        """Withdraw foreign LSAs that went a full max-age unrefreshed."""
        now = self.kernel.now
        horizon = self.max_age * (1.0 + 1e-9)
        for name, node in sorted(self.nodes.items()):
            expired = [origin for origin, at in node.installed_at.items()
                       if origin != name and now - at > horizon]
            for origin in expired:
                node.lsdb.pop(origin, None)
                node.installed_at.pop(origin, None)
                self.lsas_expired += 1
                tracer = self.kernel.tracer
                if tracer is not None:
                    tracer.instant("net", "lsa.expire", router=name,
                                   origin=origin)
            if expired:
                self._schedule_spf(node)
        self._age_event = self.kernel.schedule(
            self.max_age / 4.0, self._age_tick)

    # ------------------------------------------------------------------
    # SPF
    # ------------------------------------------------------------------
    def _schedule_spf(self, node: _Node) -> None:
        if node.spf_pending:
            return
        node.spf_pending = True
        self.kernel.schedule(self.spf_delay, self._spf_timer, node)

    def _spf_timer(self, node: _Node) -> None:
        node.spf_pending = False
        self._run_spf(node, notify=True)

    def _run_spf(self, node: _Node, notify: bool) -> None:
        self.spf_runs += 1
        table = spf_first_hops(node.lsdb, node.router.name)
        before = dict(node.router.routes)
        node.router.routes.clear()
        adjacency = {
            peer: iface
            for peer, iface in self.network._adjacency[node.router.name]
        }
        for dst in sorted(table):
            if dst in self.nodes:
                continue  # install host destinations only
            _, first_hop = table[dst]
            egress = adjacency.get(first_hop)
            if egress is not None and egress.link is not None \
                    and egress.link.up:
                node.router.routes[dst] = egress
        changed = node.router.routes != before
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "spf.install", router=node.router.name,
                           routes=len(node.router.routes), changed=changed)
        if changed and notify:
            for callback in self._listeners:
                callback(node.router)


class ReservationResignaler:
    """Make-before-break trigger: SPF convergence -> RSVP re-signal.

    Convergence events from many routers within one failure are
    debounced behind ``delay``; when the timer fires, every given
    sender-side agent re-announces its flows under a bumped epoch
    (:meth:`RsvpAgent.resignal_all`), which re-installs reservations
    along the new egress and tears the old path down behind them.
    """

    def __init__(self, kernel: Kernel, routing: LinkStateRouting,
                 agents, delay: float = 0.25) -> None:
        self.kernel = kernel
        self.agents = list(agents)
        self.delay = float(delay)
        self._pending = None
        #: Completed re-signal rounds (observability).
        self.resignals = 0
        routing.add_convergence_listener(self._on_convergence)

    def _on_convergence(self, router: Router) -> None:
        if self._pending is None:
            self._pending = self.kernel.schedule(self.delay, self._fire)

    def _fire(self) -> None:
        self._pending = None
        self.resignals += 1
        for agent in self.agents:
            agent.resignal_all()


# ----------------------------------------------------------------------
# One-shot helpers (static snapshots of the same SPF)
# ----------------------------------------------------------------------
def _global_lsdb(network: Network,
                 down: FrozenSet[Link] = frozenset()) -> Dict[str, Lsa]:
    lsdb: Dict[str, Lsa] = {}
    for router in network.routers:
        neighbors: List[Tuple[str, float]] = []
        stubs: List[str] = []
        for peer, iface in network._adjacency[router.name]:
            link = iface.link
            if link is None or not link.up or link in down:
                continue
            if isinstance(network.device(peer), Router):
                neighbors.append((peer, 1.0))
            else:
                stubs.append(peer)
        lsdb[router.name] = Lsa(router.name, 1,
                                tuple(sorted(neighbors)),
                                tuple(sorted(stubs)))
    return lsdb


def install_spf_routes(network: Network) -> None:
    """Install the converged SPF tables once, with no live protocol.

    The static-route arms of fig11 use this so their initial tables are
    *identical* to what :class:`LinkStateRouting` would install — the
    experiment's axis is then purely "does the network re-converge",
    never "did the two arms start on different shortest paths".
    """
    lsdb = _global_lsdb(network)
    router_names = set(lsdb)
    for router in sorted(network.routers, key=lambda r: r.name):
        table = spf_first_hops(lsdb, router.name)
        adjacency = dict(network._adjacency[router.name])
        router.routes.clear()
        for dst in sorted(table):
            if dst in router_names:
                continue
            _, first_hop = table[dst]
            egress = adjacency.get(first_hop)
            if egress is not None:
                router.routes[dst] = egress


def predict_path(network: Network, src_host: str, dst_host: str,
                 down: FrozenSet[Link] = frozenset()) -> List[str]:
    """The hop-by-hop forwarding path converged SPF tables produce.

    Walks per-router first hops (each router running its own
    tie-broken Dijkstra), which is exactly how the distributed tables
    compose — a single source-rooted shortest path could disagree at
    equal-cost splits.  Raises ``KeyError`` when ``dst_host`` is
    unreachable under the given set of ``down`` links.
    """
    lsdb = _global_lsdb(network, down)
    nic = network.nic_of(src_host)
    if not nic.interfaces:
        raise KeyError(f"host {src_host!r} has no attached links")
    path = [src_host]
    current = nic.interfaces[0].peer.owner.name
    seen = set()
    while current != dst_host:
        if current in seen:  # pragma: no cover - defensive
            raise KeyError(f"forwarding loop predicting {src_host}->"
                           f"{dst_host} at {current}")
        seen.add(current)
        path.append(current)
        entry = spf_first_hops(lsdb, current).get(dst_host)
        if entry is None:
            raise KeyError(
                f"no path {src_host} -> {dst_host} (stuck at {current})")
        current = entry[1]
    path.append(dst_host)
    return path
