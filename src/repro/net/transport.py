"""Transport endpoints: datagram sockets and reliable streams.

``DatagramSocket``
    UDP-like: unreliable, unordered, message-per-packet.  The A/V
    Streaming Service sends media frames over these, so congestion loss
    turns directly into lost frames (the Fig 7 phenomenon).

``StreamConnection`` / ``StreamListener``
    TCP-like: reliable, in-order message delivery with fragmentation to
    MTU, cumulative ACKs, go-back-N retransmission with exponential
    backoff, and fast retransmit on triple duplicate ACKs.  GIOP
    connections ride on these, so congestion loss turns into latency
    spikes (the Fig 4b phenomenon: "latency fluctuates widely between a
    few milliseconds to over a second").

Both carry a configurable DSCP — the hook TAO's extended protocol
properties use to mark traffic (paper section 3.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.net.diffserv import Dscp
from repro.net.nic import Nic
from repro.net.packet import MTU_BYTES, Packet, Protocol

_message_ids = itertools.count(1)

#: Receive callback for datagram sockets: (payload, packet) -> None.
DatagramReceiver = Callable[[Any, Packet], None]
#: Receive callback for streams: (payload, message_meta) -> None.
MessageReceiver = Callable[[Any, "MessageMeta"], None]


class DatagramSocket:
    """An unreliable, unordered message endpoint (UDP-like)."""

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        port: Optional[int] = None,
        on_receive: Optional[DatagramReceiver] = None,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.port = port if port is not None else nic.allocate_port()
        self.on_receive = on_receive
        self.sent = 0
        self.received = 0
        self._closed = False
        nic.bind(Protocol.UDP, self.port, self._deliver)

    def send_to(
        self,
        dst: str,
        dst_port: int,
        payload: Any = None,
        payload_bytes: int = 0,
        dscp: Dscp = Dscp.BE,
        flow_id: Optional[str] = None,
    ) -> bool:
        """Fire-and-forget one datagram; False if dropped at first hop."""
        if self._closed:
            raise RuntimeError("socket is closed")
        packet = Packet(
            src=self.nic.host.name,
            dst=dst,
            src_port=self.port,
            dst_port=dst_port,
            protocol=Protocol.UDP,
            payload=payload,
            payload_bytes=payload_bytes,
            dscp=dscp,
            flow_id=flow_id,
            created_at=self.kernel.now,
        )
        self.sent += 1
        return self.nic.send(packet)

    def _deliver(self, packet: Packet) -> None:
        self.received += 1
        if self.on_receive is not None:
            self.on_receive(packet.payload, packet)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.nic.unbind(Protocol.UDP, self.port)


class MessageMeta:
    """Delivery metadata handed to stream message receivers."""

    __slots__ = ("message_id", "sent_at", "delivered_at", "size_bytes")

    def __init__(
        self, message_id: int, sent_at: float, delivered_at: float, size_bytes: int
    ) -> None:
        self.message_id = message_id
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.size_bytes = size_bytes

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class _Segment:
    """One stream fragment in flight."""

    __slots__ = (
        "seq", "kind", "message_id", "chunk_index", "chunk_count",
        "data", "nbytes", "sent_at", "last_tx", "retransmitted",
        "ecn_echo",
    )

    def __init__(
        self,
        seq: int,
        kind: str,
        message_id: int = 0,
        chunk_index: int = 0,
        chunk_count: int = 0,
        data: Any = None,
        nbytes: int = 0,
        sent_at: float = 0.0,
    ) -> None:
        self.seq = seq
        self.kind = kind  # "data" | "ack"
        self.message_id = message_id
        self.chunk_index = chunk_index
        self.chunk_count = chunk_count
        self.data = data
        self.nbytes = nbytes
        self.sent_at = sent_at
        self.last_tx = sent_at
        self.retransmitted = False
        #: On ACK segments: the receiver saw an ECN congestion mark.
        self.ecn_echo = False


class StreamConnection:
    """A reliable, ordered, message-oriented connection (TCP-like).

    Create the client side with :meth:`connect`; server sides are
    created by :class:`StreamListener`.  Messages larger than the MTU
    are fragmented; delivery is exactly-once and in order.
    """

    INITIAL_RTO = 0.2
    MIN_RTO = 0.05
    MAX_RTO = 4.0
    #: Hard cap on the congestion window (segments).
    WINDOW = 128
    #: Initial congestion window / post-RTO restart window.
    INITIAL_CWND = 4
    DUP_ACK_THRESHOLD = 3
    #: Consecutive unanswered RTOs before the connection gives up
    #: (mirrors TCP's R2 threshold); prevents a dead peer from keeping
    #: retransmission timers alive forever.
    MAX_CONSECUTIVE_RTOS = 12

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        local_port: int,
        remote_host: str,
        remote_port: int,
        dscp: Dscp = Dscp.BE,
        on_message: Optional[MessageReceiver] = None,
        max_rtos: Optional[int] = None,
        window: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.dscp = dscp
        self.on_message = on_message
        #: Per-connection give-up threshold; QoS layers (e.g. pub-sub
        #: RELIABLE endpoints) may bound retransmission effort below
        #: the class default.
        self.max_consecutive_rtos = (
            self.MAX_CONSECUTIVE_RTOS if max_rtos is None else int(max_rtos))
        #: Per-connection cwnd cap: low-rate flows bound their slow-
        #: start overshoot well below the default bulk window.
        self.window = self.WINDOW if window is None else int(window)
        # --- sender state ---
        self._next_seq = 0
        self._base = 0  # oldest unacked seq
        self._in_flight: Dict[int, _Segment] = {}
        self._backlog: List[_Segment] = []
        self._rto = self.INITIAL_RTO
        self._rto_event: Optional[ScheduledEvent] = None
        self._dup_acks = 0
        self._consecutive_rtos = 0
        # RFC 6298 estimator state (None until the first sample).
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        # Slow start / AIMD congestion control (segment units).
        self._cwnd = float(self.INITIAL_CWND)
        self._ssthresh = float(self.window)
        self._last_ecn_reaction = float("-inf")
        #: Congestion-window reductions triggered by ECN echoes.
        self.ecn_responses = 0
        # --- receiver state ---
        self._expected_seq = 0
        self._out_of_order: Dict[int, _Segment] = {}
        self._partial: Dict[int, List[Any]] = {}
        self._partial_bytes: Dict[int, int] = {}
        self._partial_t0: Dict[int, float] = {}
        # --- stats ---
        self.messages_sent = 0
        self.messages_delivered = 0
        self.segments_sent = 0
        self.retransmissions = 0
        self.closed = False
        #: Invoked exactly once when the connection closes (give-up or
        #: explicit close); lets owners fail work parked on the
        #: connection instead of leaving it waiting forever.
        self.on_close: Optional[Callable[["StreamConnection"], None]] = None

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        kernel: Kernel,
        nic: Nic,
        remote_host: str,
        remote_port: int,
        dscp: Dscp = Dscp.BE,
        on_message: Optional[MessageReceiver] = None,
        max_rtos: Optional[int] = None,
        window: Optional[int] = None,
    ) -> "StreamConnection":
        """Open a client connection from an ephemeral local port."""
        local_port = nic.allocate_port()
        conn = cls(
            kernel, nic, local_port, remote_host, remote_port,
            dscp=dscp, on_message=on_message, max_rtos=max_rtos,
            window=window,
        )
        nic.bind(Protocol.TCP, local_port, conn._deliver)
        return conn

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_message(self, payload: Any, payload_bytes: int) -> int:
        """Queue one application message; returns its message id."""
        if self.closed:
            raise RuntimeError("connection is closed")
        message_id = next(_message_ids)
        now = self.kernel.now
        chunk_count = max(1, -(-payload_bytes // MTU_BYTES))  # ceil div
        remaining = payload_bytes
        for index in range(chunk_count):
            nbytes = min(MTU_BYTES, remaining) if payload_bytes else 0
            remaining -= nbytes
            segment = _Segment(
                seq=self._next_seq,
                kind="data",
                message_id=message_id,
                chunk_index=index,
                chunk_count=chunk_count,
                # Only the last chunk carries the payload object; the
                # rest carry placeholder weight.
                data=payload if index == chunk_count - 1 else None,
                nbytes=nbytes,
                sent_at=now,
            )
            self._next_seq += 1
            self._backlog.append(segment)
        self.messages_sent += 1
        self._pump()
        return message_id

    @property
    def _window(self) -> int:
        return min(self.window, max(self.INITIAL_CWND, int(self._cwnd)))

    def _pump(self) -> None:
        while self._backlog and len(self._in_flight) < self._window:
            segment = self._backlog.pop(0)
            self._in_flight[segment.seq] = segment
            self._transmit(segment)
        if self._in_flight and self._rto_event is None:
            self._arm_rto()

    def _transmit(self, segment: _Segment) -> None:
        self.segments_sent += 1
        segment.last_tx = self.kernel.now
        packet = Packet(
            src=self.nic.host.name,
            dst=self.remote_host,
            src_port=self.local_port,
            dst_port=self.remote_port,
            protocol=Protocol.TCP,
            payload=segment,
            payload_bytes=segment.nbytes,
            dscp=self.dscp,
            created_at=self.kernel.now,
        )
        self.nic.send(packet)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._rto_event = self.kernel.schedule(self._rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._in_flight or self.closed:
            return
        self._consecutive_rtos += 1
        if self._consecutive_rtos > self.max_consecutive_rtos:
            # Peer looks dead: give up rather than retransmit forever.
            self.close()
            return
        self._ssthresh = max(2.0, self._cwnd / 2)
        self._cwnd = float(self.INITIAL_CWND)
        # A timeout restarts loss recovery from scratch: any dup-ack
        # count accumulated before it is stale and must not be allowed
        # to trigger a spurious fast retransmit afterwards.
        self._dup_acks = 0
        base_segment = self._in_flight.get(self._base)
        if base_segment is not None:
            self.retransmissions += 1
            base_segment.retransmitted = True
            self._trace_retransmit(base_segment, "rto")
            self._transmit(base_segment)
        self._rto = min(self.MAX_RTO, self._rto * 2)
        self._arm_rto()

    def _trace_retransmit(self, segment: _Segment, reason: str) -> None:
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant(
                "net", "stream.retransmit", seq=segment.seq, reason=reason,
                src=self.nic.host.name, dst=self.remote_host,
                message=segment.message_id,
            )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        segment: _Segment = packet.payload
        if segment.kind == "ack":
            if segment.ecn_echo:
                self._on_ecn_echo()
            self._handle_ack(segment.seq)
        else:
            self._handle_data(segment, congestion_marked=packet.ecn)

    def _update_rtt(self, sample: float) -> None:
        """RFC 6298 smoothed RTT / variance update."""
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(
            self.MAX_RTO, max(self.MIN_RTO, self._srtt + 4 * self._rttvar)
        )

    def _handle_ack(self, ack_seq: int) -> None:
        if ack_seq > self._base:
            acked = ack_seq - self._base
            popped = [
                self._in_flight.pop(seq, None)
                for seq in range(self._base, ack_seq)
            ]
            live = [segment for segment in popped if segment is not None]
            if live and all(not s.retransmitted for s in live):
                # Karn's algorithm, range form: a cumulative ack whose
                # span includes any retransmission is ambiguous — and
                # so is one that releases segments merely *buffered*
                # behind a retransmitted hole.  Only a clean advance
                # gives a sample, measured on its newest segment.
                self._update_rtt(self.kernel.now - live[-1].last_tx)
            elif self._srtt is not None:
                # Recovery made progress: shed any RTO backoff.
                self._rto = min(
                    self.MAX_RTO,
                    max(self.MIN_RTO, self._srtt + 4 * self._rttvar),
                )
            else:
                # No RTT sample ever completed (every ack so far was
                # ambiguous under Karn) — without this the connection
                # would keep the fully backed-off RTO (up to MAX_RTO)
                # for the rest of its life.
                self._rto = self.INITIAL_RTO
            self._base = ack_seq
            self._dup_acks = 0
            self._consecutive_rtos = 0
            # Congestion window growth: slow start below ssthresh,
            # linear (AIMD) above it.
            for _ in range(acked):
                if self._cwnd < self._ssthresh:
                    self._cwnd += 1.0
                else:
                    self._cwnd += 1.0 / self._cwnd
            self._cancel_rto()
            self._pump()
            # NewReno-style recovery: a partial ack exposing a stale
            # hole means that hole was lost too — retransmit it now
            # rather than after another full RTO.
            hole = self._in_flight.get(self._base)
            if (
                hole is not None
                and self._srtt is not None
                and self.kernel.now - hole.last_tx
                    > self._srtt + 2 * self._rttvar
            ):
                self.retransmissions += 1
                hole.retransmitted = True
                self._trace_retransmit(hole, "newreno-hole")
                self._transmit(hole)
        elif ack_seq == self._base and self._in_flight:
            # Even a duplicate ack proves the peer (and the return
            # path) is alive — it must reset the give-up counter just
            # like an advancing one.
            self._consecutive_rtos = 0
            self._dup_acks += 1
            if self._dup_acks >= self.DUP_ACK_THRESHOLD:
                self._dup_acks = 0
                self._ssthresh = max(2.0, self._cwnd / 2)
                self._cwnd = self._ssthresh
                base_segment = self._in_flight.get(self._base)
                if base_segment is not None:
                    self.retransmissions += 1
                    base_segment.retransmitted = True
                    self._trace_retransmit(base_segment, "fast-retransmit")
                    self._transmit(base_segment)

    def _handle_data(
        self, segment: _Segment, congestion_marked: bool = False
    ) -> None:
        if segment.seq >= self._expected_seq:
            self._out_of_order.setdefault(segment.seq, segment)
            while self._expected_seq in self._out_of_order:
                ready = self._out_of_order.pop(self._expected_seq)
                self._expected_seq += 1
                self._assemble(ready)
        self._send_ack(self._expected_seq, ecn_echo=congestion_marked)

    def _assemble(self, segment: _Segment) -> None:
        mid = segment.message_id
        chunks = self._partial.setdefault(mid, [])
        self._partial_bytes[mid] = self._partial_bytes.get(mid, 0) + segment.nbytes
        self._partial_t0.setdefault(mid, segment.sent_at)
        chunks.append(segment)
        if len(chunks) == segment.chunk_count:
            payload = chunks[-1].data
            meta = MessageMeta(
                message_id=mid,
                sent_at=self._partial_t0.pop(mid),
                delivered_at=self.kernel.now,
                size_bytes=self._partial_bytes.pop(mid),
            )
            del self._partial[mid]
            self.messages_delivered += 1
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.instant(
                    "net", "stream.deliver", message=mid,
                    host=self.nic.host.name, latency=meta.latency,
                    bytes=meta.size_bytes,
                )
            if self.on_message is not None:
                self.on_message(payload, meta)

    def _send_ack(self, ack_seq: int, ecn_echo: bool = False) -> None:
        ack = _Segment(seq=ack_seq, kind="ack")
        ack.ecn_echo = ecn_echo
        packet = Packet(
            src=self.nic.host.name,
            dst=self.remote_host,
            src_port=self.local_port,
            dst_port=self.remote_port,
            protocol=Protocol.TCP,
            payload=ack,
            payload_bytes=0,
            dscp=self.dscp,
            created_at=self.kernel.now,
        )
        self.nic.send(packet)

    def _on_ecn_echo(self) -> None:
        """React to explicit congestion: halve the window, at most once
        per round-trip (RFC 3168 discipline)."""
        now = self.kernel.now
        rtt = self._srtt if self._srtt is not None else self.INITIAL_RTO
        if now - self._last_ecn_reaction <= rtt:
            return
        self._last_ecn_reaction = now
        self._ssthresh = max(2.0, self._cwnd / 2)
        self._cwnd = self._ssthresh
        self.ecn_responses += 1

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Segments sent but not yet acknowledged."""
        return len(self._in_flight)

    @property
    def send_depth(self) -> int:
        """Unacknowledged plus not-yet-transmitted segments.

        Senders that prefer skipping to queueing (video) watch this to
        decide whether the connection is keeping up.
        """
        return len(self._in_flight) + len(self._backlog)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._cancel_rto()
        self.nic.unbind(Protocol.TCP, self.local_port)
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StreamConnection {self.nic.host.name}:{self.local_port}->"
            f"{self.remote_host}:{self.remote_port} dscp={self.dscp.name}>"
        )


class StreamListener:
    """Accepts stream connections on a well-known port.

    Per-peer server-side connections are created lazily on the first
    segment from a new (host, port) pair — a simplification of the SYN
    handshake that preserves what the experiments measure.
    """

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        port: int,
        on_connection: Optional[Callable[[StreamConnection], None]] = None,
        on_message: Optional[MessageReceiver] = None,
        dscp: Dscp = Dscp.BE,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.port = int(port)
        self.on_connection = on_connection
        self.on_message = on_message
        self.dscp = dscp
        self.connections: Dict[Tuple[str, int], StreamConnection] = {}
        nic.bind(Protocol.TCP, self.port, self._deliver)

    def _deliver(self, packet: Packet) -> None:
        key = (packet.src, packet.src_port)
        conn = self.connections.get(key)
        if conn is None:
            conn = StreamConnection(
                self.kernel,
                self.nic,
                local_port=self.port,
                remote_host=packet.src,
                remote_port=packet.src_port,
                # Mirror the peer's marking: both directions of one
                # connection carry the same DSCP, as on a real socket
                # with a per-connection TOS.
                dscp=packet.dscp,
                on_message=self.on_message,
            )
            self.connections[key] = conn
            if self.on_connection is not None:
                self.on_connection(conn)
        conn._deliver(packet)

    def close(self) -> None:
        self.nic.unbind(Protocol.TCP, self.port)
        for conn in self.connections.values():
            conn.closed = True
            conn._cancel_rto()
