"""Store-and-forward routers.

A router forwards packets by destination host name using a routing
table computed by :class:`repro.net.topology.Network`.  Two behaviours
beyond plain forwarding matter for the paper:

* **DiffServ** — the router does not mark or reorder itself; its egress
  interfaces are configured with :class:`~repro.net.queues.DiffServQueue`
  (or plain FIFO for the non-DiffServ control arms).  Whether the
  "router machine" honours DSCPs is purely a queue-discipline choice,
  exactly as in the testbed.

* **RSVP interception** — PATH/RESV signaling packets are addressed to
  the flow endpoints but must be processed hop-by-hop (router alert).
  The router hands them to its :class:`~repro.net.intserv.RsvpAgent`,
  which performs admission control and installs token buckets on the
  egress :class:`~repro.net.queues.GuaranteedRateQueue`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.kernel import Kernel
from repro.net.link import Interface
from repro.net.packet import Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.intserv import RsvpAgent


class Router:
    """A packet forwarder with per-destination routing.

    Interfaces are created by :class:`repro.net.topology.Network` when
    links are wired; the routing table maps destination host names to
    egress interfaces.
    """

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self.routes: Dict[str, Interface] = {}
        #: Packets forwarded (observability).
        self.forwarded = 0
        #: Packets dropped for lack of a route.
        self.unroutable = 0
        #: Drop book, shaped like the qdisc one so conservation
        #: harnesses can fold router drops into the same
        #: delivered / dropped-with-reason / in-flight partition.
        self.dropped = 0
        self.drops_by_reason: Dict[str, int] = {}
        self.drops_by_flow: Dict[str, int] = {}
        #: Optional drop hook ``on_drop(packet, reason)``.
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        #: RSVP agent; installed by the Network when IntServ is enabled.
        self.rsvp_agent: Optional["RsvpAgent"] = None

    # ------------------------------------------------------------------
    def add_interface(self, interface: Interface) -> None:
        self.interfaces[interface.name] = interface

    def set_route(self, destination: str, interface: Interface) -> None:
        self.routes[destination] = interface

    def egress_for(self, destination: str) -> Optional[Interface]:
        return self.routes.get(destination)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, ingress: Interface) -> None:
        """Process a packet arriving on ``ingress``."""
        if packet.protocol is Protocol.RSVP and self.rsvp_agent is not None:
            self.rsvp_agent.handle_transit(packet, ingress)
            return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        egress = self.routes.get(packet.dst)
        tracer = self.kernel.tracer
        if egress is None:
            self._drop(packet, "unroutable")
            return
        self.forwarded += 1
        if tracer is not None:
            tracer.instant("net", "route.forward", router=self.name,
                           dst=packet.dst, flow=packet.flow_id,
                           packet=packet.packet_id, dscp=packet.dscp.name)
        egress.send(packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        """Account one dropped packet through the same books (count,
        per-flow, per-reason, ``on_drop`` hook) the qdiscs keep."""
        self.dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        self.drops_by_flow[packet.flow_id] = (
            self.drops_by_flow.get(packet.flow_id, 0) + 1)
        if reason == "unroutable":
            self.unroutable += 1
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "route.unroutable", router=self.name,
                           dst=packet.dst, flow=packet.flow_id,
                           packet=packet.packet_id, reason=reason)
        if self.on_drop is not None:
            self.on_drop(packet, reason)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Router {self.name!r} ifaces={list(self.interfaces)}>"
