"""Simulated network substrate.

Models the paper's testbed network: store-and-forward links, routers
with configurable queue disciplines, DiffServ per-hop behaviours
(section 3.2), and IntServ/RSVP per-flow reservations (section 3.4).

Layering (bottom up):

``packet`` / ``diffserv``
    IP-like packets carrying a DSCP + ECN field; codepoint definitions.

``queues``
    Egress queue disciplines: tail-drop FIFO, DiffServ strict-priority
    bands, and a guaranteed-rate discipline with token-bucket policing
    for IntServ reservations.

``link`` / ``router`` / ``nic``
    Store-and-forward devices.  Routers forward by destination host
    name and intercept RSVP signaling hop-by-hop.

``topology``
    The :class:`Network` builder: attach hosts, create routers, wire
    duplex links, compute shortest-path routes.  Also the topology
    generators (Waxman, fat-tree, multi-PoP WAN) the scale scenarios
    build on.

``routing``
    Dynamic link-state routing: LSA flooding, Dijkstra SPF with
    deterministic tie-breaks, and RSVP make-before-break re-signaling
    on convergence.

``transport``
    UDP-like datagram sockets and a TCP-like reliable, in-order stream
    with retransmission — the ORB's GIOP connections ride on the
    latter, A/V media flows on the former.

``intserv``
    RSVP PATH/RESV signaling agents with per-hop admission control.

``traffic``
    Cross-traffic generators used to congest the experiments.
"""

from repro.net.diffserv import Dscp, PhbClass, classify
from repro.net.intserv import (
    FlowSpec,
    Reservation,
    ReservationError,
    RsvpAgent,
)
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.packet import Packet, Protocol
from repro.net.queues import (
    DiffServQueue,
    FifoQueue,
    GuaranteedRateQueue,
    QueueDiscipline,
    TokenBucket,
)
from repro.net.router import Router
from repro.net.routing import (
    SEQ_MODULUS,
    LinkStateRouting,
    Lsa,
    ReservationResignaler,
    install_spf_routes,
    predict_path,
    seq_newer,
    spf_first_hops,
)
from repro.net.topology import (
    GeneratedTopology,
    Network,
    fat_tree_topology,
    generate_topology,
    wan_topology,
    waxman_topology,
)
from repro.net.traffic import CbrTrafficSource, PoissonTrafficSource
from repro.net.transport import DatagramSocket, StreamConnection, StreamListener

__all__ = [
    "CbrTrafficSource",
    "DatagramSocket",
    "DiffServQueue",
    "Dscp",
    "FifoQueue",
    "FlowSpec",
    "GeneratedTopology",
    "GuaranteedRateQueue",
    "Interface",
    "Link",
    "LinkStateRouting",
    "Lsa",
    "Network",
    "Nic",
    "Packet",
    "PhbClass",
    "PoissonTrafficSource",
    "Protocol",
    "QueueDiscipline",
    "Reservation",
    "ReservationError",
    "ReservationResignaler",
    "Router",
    "RsvpAgent",
    "SEQ_MODULUS",
    "StreamConnection",
    "StreamListener",
    "TokenBucket",
    "classify",
    "fat_tree_topology",
    "generate_topology",
    "install_spf_routes",
    "predict_path",
    "seq_newer",
    "spf_first_hops",
    "wan_topology",
    "waxman_topology",
]
