"""IntServ/RSVP: per-flow network reservations (paper section 3.4).

RSVP is a receiver-oriented signaling protocol: the sender announces a
flow with a PATH message that records state hop-by-hop; the receiver
answers with a RESV message that retraces the path in reverse, and at
every hop the router performs admission control and installs the
reservation (here: a token bucket feeding the guaranteed-rate queue on
the data-egress interface).  "Each intermediate router between the
source and destination host receives this signaling information, and
allocates enough resources to meet the required QoS."

Implemented messages: PATH, RESV, RESV_ERR, TEAR.  Setup-time loss is
survived by a bounded RESV retry.  Full soft-state refresh is opt-in
(``refresh_interval``): endpoints then periodically re-send PATH and
RESV, transit state that stops being refreshed expires after
``LIFETIME_MULTIPLIER`` missed refreshes, and teardown re-sends its
TEAR a bounded number of times so a single lost TEAR no longer strands
``reserved_rate`` at transit routers forever.

Fast reroute is make-before-break: after the routing layer
re-converges, :meth:`RsvpAgent.resignal` re-sends PATH under a bumped
*epoch*; the receiver answers with a RESV that installs along the new
egress, and only once the sender confirms does the receiver TEAR the
superseded epoch — forwarded hop-by-hop along the *old* reverse path,
so a late TEAR can never remove the new installation.  Installed rate
on an interface whose link dies is additionally released synchronously
(:meth:`RsvpAgent.on_link_down`), keeping the admission ledger exact
through crash/reroute/re-admit sequences.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple, Union

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.process import Signal
from repro.net.diffserv import Dscp
from repro.net.link import Interface
from repro.net.nic import Nic
from repro.net.packet import Packet, Protocol
from repro.net.queues import GuaranteedRateQueue
from repro.net.router import Router

#: Simulated size of RSVP control messages, in bytes.
_SIGNALING_BYTES = 200

_session_ids = itertools.count(1)


class ReservationError(RuntimeError):
    """Admission control rejected a reservation along the path."""


class FlowSpec:
    """The reservation request: a token-bucket service specification."""

    __slots__ = ("rate_bps", "bucket_bytes")

    def __init__(self, rate_bps: float, bucket_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_bytes}")
        self.rate_bps = float(rate_bps)
        self.bucket_bytes = int(bucket_bytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlowSpec({self.rate_bps/1e3:.0f}kbps, {self.bucket_bytes}B)"


class _RsvpMsg:
    """Payload of an RSVP signaling packet.

    ``epoch`` is the make-before-break generation: re-signaling after a
    reroute bumps it, so state along the old path (and the TEAR that
    eventually removes it) can never clobber the new installation.
    """

    __slots__ = ("kind", "flow_id", "sender", "receiver", "flowspec",
                 "reason", "epoch")

    def __init__(
        self,
        kind: str,
        flow_id: str,
        sender: str,
        receiver: str,
        flowspec: Optional[FlowSpec] = None,
        reason: str = "",
        epoch: int = 0,
    ) -> None:
        self.kind = kind  # PATH | RESV | RESV_ERR | TEAR
        self.flow_id = flow_id
        self.sender = sender
        self.receiver = receiver
        self.flowspec = flowspec
        self.reason = reason
        self.epoch = epoch


class Reservation:
    """Receiver-side handle for one requested reservation.

    ``established`` is a :class:`~repro.sim.process.Signal` fired with
    ``True`` when the sender confirms installation, or ``False`` when a
    RESV_ERR arrives / retries are exhausted.
    """

    MAX_ATTEMPTS = 5
    RETRY_INTERVAL = 1.0

    def __init__(self, kernel: Kernel, flow_id: str, flowspec: FlowSpec) -> None:
        self.kernel = kernel
        self.flow_id = flow_id
        self.flowspec = flowspec
        self.state = "pending"  # pending | established | failed | torn_down
        self.failure_reason = ""
        self.established = Signal(kernel, name=f"resv-{flow_id}")
        self.attempts = 0
        self._retry_event: Optional[ScheduledEvent] = None

    @property
    def is_established(self) -> bool:
        return self.state == "established"

    def _conclude(self, state: str, reason: str = "") -> None:
        if self.state != "pending":
            return
        self.state = state
        self.failure_reason = reason
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
        self.established.fire(state == "established")


#: Path state stored per node: (toward-sender iface, data-egress iface).
_PathState = Tuple[Optional[Interface], Optional[Interface]]


class RsvpAgent:
    """RSVP processing for one device (router or host NIC).

    Routers do transit processing (admission + installation); host
    agents originate PATH (sender side) and RESV (receiver side).
    """

    #: A flow's soft state survives this many missed refreshes.
    LIFETIME_MULTIPLIER = 3
    #: Extra TEAR transmissions after the first (lost-TEAR hardening).
    TEAR_RESENDS = 2
    TEAR_RESEND_INTERVAL = 0.5

    def __init__(
        self,
        kernel: Kernel,
        device: Union[Router, Nic],
        utilization_bound: float = 0.9,
        refresh_interval: Optional[float] = None,
    ) -> None:
        self.kernel = kernel
        self.device = device
        self.utilization_bound = float(utilization_bound)
        #: Soft-state refresh period; None keeps the pre-refresh
        #: behaviour (no periodic messages, no expiry — and, crucially,
        #: no timers keeping an open-ended ``kernel.run()`` alive).
        self.refresh_interval = (
            None if refresh_interval is None else float(refresh_interval))
        # flow_id -> path state
        self._path_state: Dict[str, _PathState] = {}
        # interface -> {flow_id: reserved rate}
        self._reserved: Dict[Interface, Dict[str, float]] = {}
        # receiver side: flow_id -> Reservation
        self.reservations: Dict[str, Reservation] = {}
        # sender side: flow_id -> receiver host (announced sessions)
        self._announced: Dict[str, str] = {}
        # flow_id -> sender host name, learned from PATH messages
        self._flow_sender: Dict[str, str] = {}
        # flow_id -> current make-before-break epoch
        self._flow_epoch: Dict[str, int] = {}
        # flow_id -> (epoch, toward-sender, data-egress) of the path a
        # newer epoch superseded; kept so the old path's TEAR can be
        # forwarded hop-by-hop along the route it actually took.
        self._prev_path: Dict[str, Tuple[int, Optional[Interface],
                                         Optional[Interface]]] = {}
        # soft state: flow_id -> last refresh time / armed expiry event
        self._last_refresh: Dict[str, float] = {}
        self._expiry_events: Dict[str, ScheduledEvent] = {}
        # sender side: flow_id -> periodic PATH refresh event
        self._path_refresh_events: Dict[str, ScheduledEvent] = {}
        # receiver side: flow_id -> periodic RESV refresh event
        self._resv_refresh_events: Dict[str, ScheduledEvent] = {}
        if isinstance(device, Router):
            device.rsvp_agent = self
        else:
            device.rsvp_agent = self

    @property
    def _lifetime(self) -> Optional[float]:
        if self.refresh_interval is None:
            return None
        return self.refresh_interval * self.LIFETIME_MULTIPLIER

    # ------------------------------------------------------------------
    # Host-side API
    # ------------------------------------------------------------------
    def announce_path(self, flow_id: str, receiver_host: str) -> None:
        """Sender side: emit a PATH message describing the flow."""
        nic = self._nic()
        self._announced[flow_id] = receiver_host
        msg = _RsvpMsg("PATH", flow_id, sender=nic.host.name,
                       receiver=receiver_host,
                       epoch=self._flow_epoch.setdefault(flow_id, 0))
        self._emit(msg, dst=receiver_host)
        if self.refresh_interval is not None \
                and flow_id not in self._path_refresh_events:
            self._path_refresh_events[flow_id] = self.kernel.schedule(
                self.refresh_interval, self._refresh_path, flow_id)

    def _refresh_path(self, flow_id: str) -> None:
        receiver_host = self._announced.get(flow_id)
        if receiver_host is None or self.refresh_interval is None:
            self._path_refresh_events.pop(flow_id, None)
            return
        msg = _RsvpMsg("PATH", flow_id, sender=self._nic().host.name,
                       receiver=receiver_host,
                       epoch=self._flow_epoch.get(flow_id, 0))
        self._emit(msg, dst=receiver_host)
        self._path_refresh_events[flow_id] = self.kernel.schedule(
            self.refresh_interval, self._refresh_path, flow_id)

    def resignal(self, flow_id: str) -> None:
        """Sender side: re-announce ``flow_id`` under a bumped epoch.

        The make-before-break entry point (typically driven by SPF
        convergence): the new PATH records state along the *current*
        routes, the receiver answers with a RESV that installs on the
        new path, and once the sender confirms, the receiver tears the
        superseded path down behind it.
        """
        receiver_host = self._announced.get(flow_id)
        if receiver_host is None:
            return
        epoch = self._flow_epoch.get(flow_id, 0) + 1
        self._flow_epoch[flow_id] = epoch
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "rsvp.resignal", flow=f"rsvp:{flow_id}",
                           node=self._name(), epoch=epoch)
        msg = _RsvpMsg("PATH", flow_id, sender=self._nic().host.name,
                       receiver=receiver_host, epoch=epoch)
        self._emit(msg, dst=receiver_host)

    def resignal_all(self) -> None:
        """Re-announce every announced flow (deterministic order)."""
        for flow_id in sorted(self._announced):
            self.resignal(flow_id)

    def reserve(self, flow_id: str, flowspec: FlowSpec) -> Reservation:
        """Receiver side: request a reservation for an announced flow.

        Requires that a PATH for ``flow_id`` has already arrived (i.e.
        path state exists here); raises :class:`ReservationError`
        otherwise.
        """
        if flow_id not in self._path_state:
            raise ReservationError(
                f"no PATH state for flow {flow_id!r} at {self._name()}"
            )
        reservation = Reservation(self.kernel, flow_id, flowspec)
        self.reservations[flow_id] = reservation
        self._send_resv(reservation)
        if self.refresh_interval is not None \
                and flow_id not in self._resv_refresh_events:
            self._resv_refresh_events[flow_id] = self.kernel.schedule(
                self.refresh_interval, self._refresh_resv, flow_id)
        return reservation

    def _refresh_resv(self, flow_id: str) -> None:
        """Receiver side: periodic RESV refresh for an established flow.

        Pending reservations are left to the bounded retry machinery;
        failed / torn-down ones stop refreshing, which is what lets
        transit soft state expire after a lost TEAR.
        """
        reservation = self.reservations.get(flow_id)
        if (reservation is None or self.refresh_interval is None
                or reservation.state in ("failed", "torn_down")):
            self._resv_refresh_events.pop(flow_id, None)
            return
        if reservation.is_established and flow_id in self._path_state:
            sender = self._sender_of(flow_id)
            msg = _RsvpMsg("RESV", flow_id, sender=sender,
                           receiver=self._name(),
                           flowspec=reservation.flowspec,
                           epoch=self._flow_epoch.get(flow_id, 0))
            toward_sender, _ = self._path_state[flow_id]
            self._forward_out(msg, toward_sender, dst=sender)
        self._resv_refresh_events[flow_id] = self.kernel.schedule(
            self.refresh_interval, self._refresh_resv, flow_id)

    def teardown(self, flow_id: str) -> None:
        """Receiver side: remove the reservation along the path.

        TEAR is unreliable; to keep one lost TEAR from stranding
        ``reserved_rate`` at transit routers forever, it is re-sent
        ``TEAR_RESENDS`` times (soft-state expiry, when enabled, is the
        backstop if every copy is lost).
        """
        reservation = self.reservations.get(flow_id)
        if reservation is not None and reservation.state == "established":
            reservation.state = "torn_down"
        self._stop_refresh(flow_id)
        sender = self._sender_of(flow_id)
        self._remove_local(flow_id)
        toward_sender, _ = self._path_state.get(flow_id, (None, None))
        self._send_tear(flow_id, sender, toward_sender,
                        epoch=self._flow_epoch.get(flow_id, 0),
                        resends_left=self.TEAR_RESENDS)

    def _send_tear(
        self,
        flow_id: str,
        sender: str,
        toward_sender: Optional[Interface],
        epoch: int,
        resends_left: int,
    ) -> None:
        msg = _RsvpMsg("TEAR", flow_id, sender=sender,
                       receiver=self._name(), epoch=epoch)
        self._forward_out(msg, toward_sender, dst=sender)
        if resends_left > 0:
            self.kernel.schedule(
                self.TEAR_RESEND_INTERVAL, self._send_tear, flow_id,
                sender, toward_sender, epoch, resends_left - 1)

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------
    def handle_transit(self, packet: Packet, ingress: Interface) -> None:
        """Router interception of any RSVP packet."""
        msg: _RsvpMsg = packet.payload
        router = self.device
        assert isinstance(router, Router)
        if msg.kind == "PATH":
            flow_id = msg.flow_id
            current_epoch = self._flow_epoch.get(flow_id)
            if current_epoch is None or msg.epoch >= current_epoch:
                if current_epoch is not None and msg.epoch > current_epoch:
                    old = self._path_state.get(flow_id)
                    if old is not None:
                        self._prev_path[flow_id] = (
                            current_epoch, old[0], old[1])
                self._flow_epoch[flow_id] = msg.epoch
                egress = router.egress_for(msg.receiver)
                self._path_state[flow_id] = (ingress, egress)
                self._flow_sender[flow_id] = msg.sender
                self._touch(flow_id)
            router.forward(packet)
        elif msg.kind == "RESV":
            if msg.epoch < self._flow_epoch.get(msg.flow_id, 0):
                return  # stale refresh from a superseded path epoch
            self._touch(msg.flow_id)
            self._transit_resv(msg)
        elif msg.kind == "TEAR":
            flow_id = msg.flow_id
            if msg.epoch >= self._flow_epoch.get(flow_id, 0):
                toward_sender, _ = self._path_state.pop(
                    flow_id, (None, None)
                )
                self._remove_local(flow_id)
                self._forget_soft_state(flow_id)
                self._prev_path.pop(flow_id, None)
                self._flow_epoch.pop(flow_id, None)
                self._forward_out(msg, toward_sender, dst=msg.sender)
            else:
                # Make-before-break: a TEAR for the superseded epoch.
                # Release only what that epoch installed here (never
                # the live egress) and pass it along the *old* reverse
                # path; resends stay idempotent because the previous-
                # path record survives until the next epoch bump.
                prev = self._prev_path.get(flow_id)
                if prev is not None and msg.epoch >= prev[0]:
                    _, prev_toward, prev_egress = prev
                    live = self._path_state.get(flow_id)
                    if prev_egress is not None and (
                            live is None or prev_egress is not live[1]):
                        self._remove_on(prev_egress, flow_id)
                    self._forward_out(msg, prev_toward, dst=msg.sender)
        else:
            # RESV_ERR, RESV_CONF and any future end-to-end kinds are
            # transparent to transit routers.
            router.forward(packet)

    def handle_local(
        self, packet: Packet, ingress: Optional[Interface] = None
    ) -> None:
        """Host-side delivery of an RSVP packet addressed to this host."""
        msg: _RsvpMsg = packet.payload
        nic = self._nic()
        if msg.kind == "PATH":
            # Remember where the flow comes from; data egress is None
            # (we are the data sink).
            flow_id = msg.flow_id
            current_epoch = self._flow_epoch.get(flow_id)
            if current_epoch is not None and msg.epoch < current_epoch:
                return
            bumped = current_epoch is not None and msg.epoch > current_epoch
            if bumped:
                old = self._path_state.get(flow_id)
                if old is not None:
                    self._prev_path[flow_id] = (current_epoch, old[0], old[1])
            toward_sender = ingress or nic.egress_for(msg.sender)
            self._flow_epoch[flow_id] = msg.epoch
            self._path_state[flow_id] = (toward_sender, None)
            self._flow_sender[flow_id] = msg.sender
            self._touch(flow_id)
            if bumped:
                # Make-before-break: the sender re-announced after a
                # reroute; answer immediately with a RESV that installs
                # along the new path.
                reservation = self.reservations.get(flow_id)
                if reservation is not None and reservation.is_established:
                    self._resignal_resv(flow_id)
        elif msg.kind == "RESV":
            if msg.epoch < self._flow_epoch.get(msg.flow_id, 0):
                return
            self._touch(msg.flow_id)
            # We are the data sender: install policing on our own
            # egress toward the receiver so conforming traffic is
            # protected from the first hop on, then confirm to the
            # receiver's reservation.
            assert msg.flowspec is not None
            self._install(
                nic.egress_for(msg.receiver), msg.flow_id, msg.flowspec
            )
            confirm = _RsvpMsg("RESV_CONF", msg.flow_id, sender=msg.sender,
                               receiver=msg.receiver, flowspec=msg.flowspec,
                               epoch=msg.epoch)
            self._emit(confirm, dst=msg.receiver)
        elif msg.kind == "RESV_CONF":
            reservation = self.reservations.get(msg.flow_id)
            if reservation is not None:
                reservation._conclude("established")
            prev = self._prev_path.get(msg.flow_id)
            if prev is not None \
                    and msg.epoch == self._flow_epoch.get(msg.flow_id, 0):
                # The new path is confirmed installed end-to-end: tear
                # the superseded one down behind it.
                self._prev_path.pop(msg.flow_id)
                prev_epoch, prev_toward, _ = prev
                self._send_tear(msg.flow_id, self._sender_of(msg.flow_id),
                                prev_toward, epoch=prev_epoch,
                                resends_left=self.TEAR_RESENDS)
        elif msg.kind == "RESV_ERR":
            reservation = self.reservations.get(msg.flow_id)
            if reservation is not None:
                reservation._conclude("failed", msg.reason)
        elif msg.kind == "TEAR":
            if msg.epoch < self._flow_epoch.get(msg.flow_id, 0):
                return
            self._remove_local(msg.flow_id)
            self._path_state.pop(msg.flow_id, None)
            self._announced.pop(msg.flow_id, None)
            self._stop_refresh(msg.flow_id)
            self._forget_soft_state(msg.flow_id)
            self._prev_path.pop(msg.flow_id, None)
            self._flow_epoch.pop(msg.flow_id, None)

    # ------------------------------------------------------------------
    # RESV processing helpers
    # ------------------------------------------------------------------
    def _send_resv(self, reservation: Reservation) -> None:
        if reservation.state != "pending":
            return
        if reservation.attempts >= Reservation.MAX_ATTEMPTS:
            reservation._conclude("failed", "retries exhausted")
            return
        reservation.attempts += 1
        sender = self._sender_of(reservation.flow_id)
        msg = _RsvpMsg(
            "RESV",
            reservation.flow_id,
            sender=sender,
            receiver=self._name(),
            flowspec=reservation.flowspec,
            epoch=self._flow_epoch.get(reservation.flow_id, 0),
        )
        toward_sender, _ = self._path_state[reservation.flow_id]
        self._forward_out(msg, toward_sender, dst=sender)
        reservation._retry_event = self.kernel.schedule(
            Reservation.RETRY_INTERVAL, self._send_resv, reservation
        )

    def _resignal_resv(self, flow_id: str) -> None:
        """Receiver side: re-send RESV for an established flow after a
        make-before-break PATH bumped the epoch (installs along the
        new path; the old path is torn once the sender confirms)."""
        reservation = self.reservations[flow_id]
        sender = self._sender_of(flow_id)
        msg = _RsvpMsg("RESV", flow_id, sender=sender,
                       receiver=self._name(),
                       flowspec=reservation.flowspec,
                       epoch=self._flow_epoch.get(flow_id, 0))
        toward_sender, _ = self._path_state[flow_id]
        self._forward_out(msg, toward_sender, dst=sender)

    def _transit_resv(self, msg: _RsvpMsg) -> None:
        state = self._path_state.get(msg.flow_id)
        if state is None:
            self._send_error(msg, "no path state")
            return
        toward_sender, data_egress = state
        assert msg.flowspec is not None
        if data_egress is not None:
            try:
                self._install(data_egress, msg.flow_id, msg.flowspec)
            except ReservationError as exc:
                self._send_error(msg, str(exc))
                return
        self._forward_out(msg, toward_sender, dst=msg.sender)

    def _send_error(self, msg: _RsvpMsg, reason: str) -> None:
        error = _RsvpMsg("RESV_ERR", msg.flow_id, sender=msg.sender,
                         receiver=msg.receiver, reason=reason)
        if isinstance(self.device, Router):
            packet = self._make_packet(error, dst=msg.receiver)
            self.device.forward(packet)
        else:
            self._emit(error, dst=msg.receiver)

    # ------------------------------------------------------------------
    # Installation / removal
    # ------------------------------------------------------------------
    def _install(
        self, interface: Interface, flow_id: str, flowspec: FlowSpec
    ) -> None:
        qdisc = interface.qdisc
        if not isinstance(qdisc, GuaranteedRateQueue):
            raise ReservationError(
                f"interface {interface.name!r} does not support reservations"
            )
        assert interface.link is not None
        capacity = interface.link.bandwidth_bps * self.utilization_bound
        table = self._reserved.setdefault(interface, {})
        committed = sum(
            rate for fid, rate in table.items() if fid != flow_id
        )
        if committed + flowspec.rate_bps > capacity + 1e-9:
            raise ReservationError(
                f"admission failed on {interface.name!r}: "
                f"{committed/1e6:.2f}+{flowspec.rate_bps/1e6:.2f} Mbps "
                f"> {capacity/1e6:.2f} Mbps"
            )
        table[flow_id] = flowspec.rate_bps
        qdisc.install_reservation(
            flow_id, flowspec.rate_bps, flowspec.bucket_bytes
        )

    def _remove_local(self, flow_id: str) -> None:
        for interface in self._reserved:
            self._remove_on(interface, flow_id)

    def _remove_on(self, interface: Interface, flow_id: str) -> None:
        """Release one flow's installed rate on one interface only."""
        table = self._reserved.get(interface)
        if table is None or flow_id not in table:
            return
        del table[flow_id]
        if isinstance(interface.qdisc, GuaranteedRateQueue):
            interface.qdisc.remove_reservation(flow_id)

    def reserved_rate(self, interface: Interface) -> float:
        """Total admitted rate on ``interface`` (observability)."""
        return sum(self._reserved.get(interface, {}).values())

    # ------------------------------------------------------------------
    # Soft state
    # ------------------------------------------------------------------
    def _touch(self, flow_id: str) -> None:
        """Record a refresh for ``flow_id`` and arm its expiry timer."""
        lifetime = self._lifetime
        if lifetime is None:
            return
        self._last_refresh[flow_id] = self.kernel.now
        if flow_id not in self._expiry_events:
            self._expiry_events[flow_id] = self.kernel.schedule(
                lifetime, self._maybe_expire, flow_id)

    def _maybe_expire(self, flow_id: str) -> None:
        lifetime = self._lifetime
        last = self._last_refresh.get(flow_id)
        if lifetime is None or last is None:
            self._expiry_events.pop(flow_id, None)
            return
        deadline = last + lifetime
        if self.kernel.now + 1e-9 < deadline:
            self._expiry_events[flow_id] = self.kernel.schedule(
                deadline - self.kernel.now, self._maybe_expire, flow_id)
            return
        # No refresh for a full lifetime: reclaim everything this node
        # holds for the flow (the IntServ soft-state guarantee).
        self._expiry_events.pop(flow_id, None)
        self._last_refresh.pop(flow_id, None)
        self._remove_local(flow_id)
        self._path_state.pop(flow_id, None)
        self._flow_sender.pop(flow_id, None)
        self._flow_epoch.pop(flow_id, None)
        self._prev_path.pop(flow_id, None)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("net", "rsvp.expire", flow=f"rsvp:{flow_id}",
                           node=self._name())

    def _stop_refresh(self, flow_id: str) -> None:
        """Cancel this node's own periodic PATH/RESV refresh timers."""
        for table in (self._path_refresh_events, self._resv_refresh_events):
            event = table.pop(flow_id, None)
            if event is not None:
                event.cancel()

    def _forget_soft_state(self, flow_id: str) -> None:
        event = self._expiry_events.pop(flow_id, None)
        if event is not None:
            event.cancel()
        self._last_refresh.pop(flow_id, None)

    # ------------------------------------------------------------------
    # Fault-layer hooks
    # ------------------------------------------------------------------
    def on_link_down(self, interface: Interface) -> None:
        """Synchronously release installed rate on a dead egress.

        Called from :meth:`Link.fail`: the booked rate on an interface
        whose link just died must leave the admission ledger *now*, not
        at soft-state expiry — in the window between death and expiry
        ``reserved_rate`` would over-report and a re-admission after
        reroute could be refused against phantom capacity.  Path state
        is kept, so refresh (when enabled) re-installs after restore.
        """
        table = self._reserved.get(interface)
        if not table:
            return
        tracer = self.kernel.tracer
        for flow_id in list(table):
            self._remove_on(interface, flow_id)
            if tracer is not None:
                tracer.instant("net", "rsvp.release", flow=f"rsvp:{flow_id}",
                               node=self._name(), reason="link_down")

    def drop_reservation_state(self, flow_id: str) -> None:
        """Silently lose the installed reservation for one flow.

        Path state is kept, so (when refresh is enabled) the next RESV
        refresh re-installs the token bucket — the recovery path the
        ``resv_loss`` fault exists to exercise.
        """
        self._remove_local(flow_id)

    def drop_all_state(self) -> None:
        """Crash semantics: forget every flow this node knows about."""
        for flow_id in list(self._path_state):
            self._remove_local(flow_id)
        for table in self._reserved.values():
            for flow_id in list(table):
                del table[flow_id]
        for interface in self._reserved:
            if isinstance(interface.qdisc, GuaranteedRateQueue):
                for flow_id in list(interface.qdisc.reserved_flows()):
                    interface.qdisc.remove_reservation(flow_id)
        self._path_state.clear()
        self._flow_sender.clear()
        self._flow_epoch.clear()
        self._prev_path.clear()
        # A rebooted node has no timers either: its announced sessions
        # and refresh schedules die with it, so downstream soft state
        # stops being touched and can expire.
        self._announced.clear()
        self.reservations.clear()
        for table in (self._path_refresh_events, self._resv_refresh_events):
            for event in table.values():
                event.cancel()
            table.clear()
        for event in self._expiry_events.values():
            event.cancel()
        self._expiry_events.clear()
        self._last_refresh.clear()

    # ------------------------------------------------------------------
    # Emission plumbing
    # ------------------------------------------------------------------
    def _nic(self) -> Nic:
        if not isinstance(self.device, Nic):
            raise RuntimeError("host-side operation invoked on a router agent")
        return self.device

    def _name(self) -> str:
        if isinstance(self.device, Nic):
            return self.device.host.name
        return self.device.name

    def _sender_of(self, flow_id: str) -> str:
        sender = self._flow_sender.get(flow_id)
        if sender is not None:
            return sender
        # Fall back to the default flow-id convention "src:port->...".
        return flow_id.split(":", 1)[0]

    def _make_packet(self, msg: _RsvpMsg, dst: str) -> Packet:
        return Packet(
            src=self._name(),
            dst=dst,
            src_port=0,
            dst_port=0,
            protocol=Protocol.RSVP,
            payload=msg,
            payload_bytes=_SIGNALING_BYTES,
            dscp=Dscp.CS6,
            flow_id=f"rsvp:{msg.flow_id}",
            created_at=self.kernel.now,
        )

    def _emit(self, msg: _RsvpMsg, dst: str) -> None:
        nic = self._nic()
        packet = self._make_packet(msg, dst)
        nic.send(packet)

    def _forward_out(
        self, msg: _RsvpMsg, interface: Optional[Interface], dst: str
    ) -> None:
        packet = self._make_packet(msg, dst)
        if interface is None:
            # No recorded reverse interface: fall back to routing.
            if isinstance(self.device, Router):
                self.device.forward(packet)
            else:
                self._nic().send(packet)
            return
        interface.send(packet)
