"""DiffServ codepoints and per-hop behaviour classification.

The paper marks video flows with the Expedited Forwarding codepoint
("Diffserv CodePoint = EF", Figure 2) so DiffServ-enabled routers give
them "preferred delivery ... against lower priority competing traffic".

This module defines the standard codepoints (RFC 2474/2597/3246 values)
and the mapping from codepoint to service class used by
:class:`repro.net.queues.DiffServQueue`.
"""

from __future__ import annotations

import enum


class Dscp(enum.IntEnum):
    """DiffServ codepoints (6-bit values)."""

    BE = 0  # best effort / default PHB
    # Assured Forwarding: AFxy = class x, drop precedence y.
    AF11 = 10
    AF12 = 12
    AF13 = 14
    AF21 = 18
    AF22 = 20
    AF23 = 22
    AF31 = 26
    AF32 = 28
    AF33 = 30
    AF41 = 34
    AF42 = 36
    AF43 = 38
    # Class selectors (backward compatible with IP precedence).
    CS1 = 8
    CS2 = 16
    CS3 = 24
    CS4 = 32
    CS5 = 40
    CS6 = 48
    CS7 = 56
    # Expedited Forwarding.
    EF = 46


class PhbClass(enum.IntEnum):
    """Service classes, ordered from most to least preferred.

    Lower numeric value = served first by strict-priority schedulers.
    """

    EXPEDITED = 0  # EF: low-loss, low-latency, strict priority
    ASSURED4 = 1
    ASSURED3 = 2
    ASSURED2 = 3
    ASSURED1 = 4
    DEFAULT = 5  # best effort


_AF_CLASSES = {
    1: PhbClass.ASSURED1,
    2: PhbClass.ASSURED2,
    3: PhbClass.ASSURED3,
    4: PhbClass.ASSURED4,
}


def _classify(dscp: Dscp) -> PhbClass:
    if dscp == Dscp.EF or dscp in (Dscp.CS5, Dscp.CS6, Dscp.CS7):
        return PhbClass.EXPEDITED
    value = int(dscp)
    if 10 <= value <= 38 and value not in (16, 24, 32):
        return _AF_CLASSES[value >> 3]
    return PhbClass.DEFAULT


def _drop_precedence(dscp: Dscp) -> int:
    value = int(dscp)
    if 10 <= value <= 38 and value not in (16, 24, 32):
        return ((value >> 1) & 0x3)
    return 1


# Classification runs once per enqueue on every hop — the hottest
# per-packet code in the simulator — so both mappings are precomputed
# over the (closed) codepoint set and served by dict lookup.
_PHB_OF: dict = {dscp: _classify(dscp) for dscp in Dscp}
_PRECEDENCE_OF: dict = {dscp: _drop_precedence(dscp) for dscp in Dscp}


def classify(dscp: Dscp) -> PhbClass:
    """Map a codepoint to its per-hop behaviour class.

    EF and CS5..CS7 land in the expedited class; AF classes keep their
    relative ordering; everything else is best effort.
    """
    phb = _PHB_OF.get(dscp)
    return phb if phb is not None else _classify(dscp)


def drop_precedence(dscp: Dscp) -> int:
    """AF drop precedence (1..3); non-AF codepoints get the lowest (1)."""
    precedence = _PRECEDENCE_OF.get(dscp)
    return precedence if precedence is not None else _drop_precedence(dscp)
