"""Active queue management: RED with ECN marking.

The paper notes that the IP DiffServ byte carries "two bits of
Explicit Congestion Notification (ECN)".  This module provides the
router half of that machinery: Random Early Detection, which signals
incipient congestion *before* the queue overflows by either marking
ECN-capable packets or dropping — keeping queues (and thus latencies)
short, which is what a latency-sensitive DRE flow wants from the
best-effort class.

The transport half (halving the congestion window on an ECN echo)
lives in :mod:`repro.net.transport`.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.net.packet import Packet
from repro.net.queues import QueueDiscipline


class RedQueue(QueueDiscipline):
    """Random Early Detection with optional ECN marking.

    Parameters
    ----------
    capacity:
        Hard queue bound (packets); arrivals beyond it always drop.
    min_threshold / max_threshold:
        The RED thresholds on the *average* queue length: below min,
        accept; between, mark/drop with probability rising linearly to
        ``max_probability``; at or above max, mark/drop always.
    max_probability:
        Mark/drop probability at ``max_threshold``.
    weight:
        EWMA weight for the average queue estimate (RED's w_q).
    ecn:
        When True, congestion is signalled by setting the packet's ECN
        bit instead of dropping (packets are assumed ECN-capable, as
        modern transports are).
    rng:
        Seeded random stream for the early-drop lottery.
    """

    def __init__(
        self,
        capacity: int = 100,
        min_threshold: int = 20,
        max_threshold: int = 60,
        max_probability: float = 0.1,
        weight: float = 0.2,
        ecn: bool = True,
        rng: Optional[random.Random] = None,
        name: str = "red",
    ) -> None:
        super().__init__(name=name)
        if not 0 < min_threshold < max_threshold <= capacity:
            raise ValueError(
                f"need 0 < min_threshold < max_threshold <= capacity, got "
                f"{min_threshold}/{max_threshold}/{capacity}"
            )
        if not 0 < max_probability <= 1:
            raise ValueError(f"bad max_probability: {max_probability}")
        if not 0 < weight <= 1:
            raise ValueError(f"bad EWMA weight: {weight}")
        self.capacity = int(capacity)
        self.min_threshold = int(min_threshold)
        self.max_threshold = int(max_threshold)
        self.max_probability = float(max_probability)
        self.weight = float(weight)
        self.ecn = ecn
        self.rng = rng or random.Random(0)
        self._queue: deque = deque()
        self._average = 0.0
        #: Packets ECN-marked instead of dropped.
        self.ecn_marked = 0
        #: Early (probabilistic) congestion signals issued.
        self.early_signals = 0

    # ------------------------------------------------------------------
    @property
    def average_depth(self) -> float:
        return self._average

    def _update_average(self) -> None:
        self._average = (
            (1 - self.weight) * self._average + self.weight * len(self._queue)
        )

    def _signal(self, packet: Packet) -> bool:
        """Mark (True: packet still enqueued) or report drop (False)."""
        if self.ecn:
            packet.ecn = True
            self.ecn_marked += 1
            return True
        return False

    def enqueue(self, packet: Packet) -> bool:
        self._update_average()
        if len(self._queue) >= self.capacity:
            return self._drop(packet)
        signal = False
        if self._average >= self.max_threshold:
            signal = True
        elif self._average >= self.min_threshold:
            span = self.max_threshold - self.min_threshold
            probability = (
                self.max_probability
                * (self._average - self.min_threshold) / span
            )
            signal = self.rng.random() < probability
        if signal:
            self.early_signals += 1
            if not self._signal(packet):
                return self._drop(packet)
        self._queue.append(packet)
        return self._accept(packet)

    def dequeue(self) -> Optional[Packet]:
        packet = self._queue.popleft() if self._queue else None
        return self._record_dequeue(packet)

    def __len__(self) -> int:
        return len(self._queue)
