"""System condition objects.

A :class:`SystemCondition` exposes one observable (or controllable)
aspect of the system behind a uniform interface: ``value`` reads the
current state, ``changed`` is a signal fired when it moves, and
``observers`` (typically contracts) are re-evaluated on change.

The concrete conditions below cover what the paper's application
contracts watch: delivered frame rate, loss rate, CPU utilization, and
reservation state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.process import Signal


class SystemCondition:
    """Base: an observable named value."""

    def __init__(self, kernel: Kernel, name: str, initial: Any = None) -> None:
        self.kernel = kernel
        self.name = name
        self._value = initial
        self.changed = Signal(kernel, name=f"syscond.{name}")
        self._observers: List[Callable[["SystemCondition"], None]] = []

    @property
    def value(self) -> Any:
        return self._value

    def observe(self, callback: Callable[["SystemCondition"], None]) -> None:
        """Register for updates; called as ``callback(syscond)``."""
        self._observers.append(callback)

    def _update(self, value: Any) -> None:
        if value == self._value:
            return
        self._value = value
        self.changed.fire(value)
        for observer in list(self._observers):
            observer(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}={self._value!r}>"


class ValueSC(SystemCondition):
    """A directly settable condition (application- or manager-fed)."""

    def set(self, value: Any) -> None:
        self._update(value)


class DeliveredRateSC(SystemCondition):
    """Observed event rate (e.g. frames/second) over a sliding window.

    Call :meth:`record` on each delivery; the condition periodically
    recomputes the rate so that silence (total loss) also shows up.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        window: float = 1.0,
        update_interval: float = 0.5,
    ) -> None:
        super().__init__(kernel, name, initial=0.0)
        self.window = float(window)
        self.update_interval = float(update_interval)
        self._arrivals: deque = deque()
        self._timer: Optional[ScheduledEvent] = None

    def start(self) -> None:
        """Begin periodic recomputation (idempotent)."""
        if self._timer is None:
            self._timer = self.kernel.schedule(self.update_interval, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def record(self) -> None:
        self._arrivals.append(self.kernel.now)

    def _tick(self) -> None:
        self._timer = self.kernel.schedule(self.update_interval, self._tick)
        cutoff = self.kernel.now - self.window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        self._update(len(self._arrivals) / self.window)


class LossRateSC(SystemCondition):
    """Loss fraction over a sliding window of send/receive events.

    The producer side calls :meth:`record_sent`; the consumer side (or
    a feedback channel) calls :meth:`record_received`.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        window: float = 2.0,
        update_interval: float = 0.5,
    ) -> None:
        super().__init__(kernel, name, initial=0.0)
        self.window = float(window)
        self.update_interval = float(update_interval)
        self._sent: deque = deque()
        self._received: deque = deque()
        self._timer: Optional[ScheduledEvent] = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.kernel.schedule(self.update_interval, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def record_sent(self) -> None:
        self._sent.append(self.kernel.now)

    def record_received(self) -> None:
        self._received.append(self.kernel.now)

    def _tick(self) -> None:
        self._timer = self.kernel.schedule(self.update_interval, self._tick)
        cutoff = self.kernel.now - self.window
        for series in (self._sent, self._received):
            while series and series[0] < cutoff:
                series.popleft()
        sent = len(self._sent)
        if sent == 0:
            self._update(0.0)
            return
        lost = max(0, sent - len(self._received))
        self._update(lost / sent)


class CpuUtilizationSC(SystemCondition):
    """Windowed CPU utilization of one host."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        host,
        update_interval: float = 0.5,
    ) -> None:
        super().__init__(kernel, name, initial=0.0)
        self.host = host
        self.update_interval = float(update_interval)
        self._last_busy = 0.0
        self._last_time = kernel.now
        self._timer: Optional[ScheduledEvent] = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.kernel.schedule(self.update_interval, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self._timer = self.kernel.schedule(self.update_interval, self._tick)
        # Charge the in-flight slice so the reading is current.
        self.host.cpu.reschedule()
        busy = self.host.cpu.busy_time
        now = self.kernel.now
        elapsed = now - self._last_time
        if elapsed > 0:
            self._update(min(1.0, (busy - self._last_busy) / elapsed))
        self._last_busy = busy
        self._last_time = now


class FaultReporterSC(SystemCondition):
    """The set of currently-active injected (or detected) faults.

    ``value`` is the number of active faults, so contracts can use
    plain threshold predicates; :attr:`active_faults` names them.  The
    fault layer (:class:`repro.faults.injector.FaultInjector`) calls
    :meth:`fault_started` / :meth:`fault_cleared` on every windowed
    fault edge, standing in for the out-of-band resource-status
    monitoring a deployed system would run.  Contracts observing this
    condition can shed load the instant an outage begins rather than
    waiting for loss statistics to accumulate.
    """

    def __init__(self, kernel: Kernel, name: str = "faults") -> None:
        super().__init__(kernel, name, initial=0)
        self._active: List[str] = []
        #: Total fault windows ever reported (observability).
        self.faults_seen = 0

    @property
    def active_faults(self) -> tuple:
        return tuple(self._active)

    def fault_started(self, label: str) -> None:
        if label not in self._active:
            self._active.append(label)
            self.faults_seen += 1
            self._update(len(self._active))

    def fault_cleared(self, label: str) -> None:
        if label in self._active:
            self._active.remove(label)
            self._update(len(self._active))


class ReservationStatusSC(SystemCondition):
    """Tracks an RSVP reservation's state string."""

    def __init__(self, kernel: Kernel, name: str, reservation) -> None:
        super().__init__(kernel, name, initial=reservation.state)
        self.reservation = reservation
        reservation.established.wait(
            lambda _ok: self._update(reservation.state)
        )

    def refresh(self) -> None:
        self._update(self.reservation.state)
