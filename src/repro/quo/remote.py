"""Distributed system conditions.

QuO contracts often watch conditions measured on *other* hosts (the
receiver observes losses; the sender's contract adapts).  This module
carries those observations over the ORB:

* a :class:`SyscondMirrorServant` runs beside the contract and exposes
  ``update(name, value)``; each named condition appears locally as an
  ordinary :class:`~repro.quo.syscond.ValueSC` that contracts attach
  to;
* a :class:`SyscondPublisher` runs beside the measurement and pushes
  observations as **oneway** CORBA requests — monitoring must never
  block on the monitored path — with optional rate limiting so a
  high-frequency probe does not flood the control plane.

The control traffic is real: it is marshaled, queued, and subject to
the same network QoS as everything else (publishers may therefore
want a DSCP of their own).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.kernel import Kernel
from repro.net.diffserv import Dscp
from repro.orb.cdr import CdrOutputStream, OpaquePayload
from repro.orb.core import Orb
from repro.orb.ior import ObjectReference
from repro.orb.poa import Servant
from repro.quo.syscond import ValueSC


class SyscondMirrorServant(Servant):
    """Receives remote observations and reflects them into local
    system-condition objects."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._conditions: Dict[str, ValueSC] = {}
        self.updates_received = 0

    def condition(self, name: str, initial: Any = None) -> ValueSC:
        """The local ValueSC mirroring remote condition ``name``
        (created on first use)."""
        existing = self._conditions.get(name)
        if existing is None:
            existing = ValueSC(self.kernel, name, initial=initial)
            self._conditions[name] = existing
        return existing

    # -- remote operation ---------------------------------------------------
    def update(self, name: str, value: Any) -> None:
        self.updates_received += 1
        self.condition(name).set(value)


class SyscondPublisher:
    """Pushes local observations to a remote mirror.

    Parameters
    ----------
    orb:
        The ORB on the measuring host.
    mirror_ref:
        Reference to the remote :class:`SyscondMirrorServant`.
    min_interval:
        Minimum seconds between pushes *per condition name*; more
        frequent observations are coalesced (latest value wins when
        the interval reopens).
    dscp:
        Marking for the control traffic (default CS2, a modest
        elevation so monitoring is not the first casualty of the
        congestion it is reporting).
    """

    def __init__(
        self,
        orb: Orb,
        mirror_ref: ObjectReference,
        min_interval: float = 0.0,
        dscp: Dscp = Dscp.CS2,
        thread=None,
    ) -> None:
        self.orb = orb
        self.mirror_ref = mirror_ref
        self.min_interval = float(min_interval)
        self.dscp = dscp
        self.thread = thread
        self._last_push: Dict[str, float] = {}
        self._pending: Dict[str, Any] = {}
        self.updates_sent = 0
        self.updates_coalesced = 0

    def publish(self, name: str, value: Any) -> None:
        """Push (or coalesce) one observation."""
        now = self.orb.kernel.now
        last = self._last_push.get(name)
        if (
            self.min_interval > 0
            and last is not None
            and now - last < self.min_interval
        ):
            # Too soon: remember the newest value and arm a flush at
            # the end of the interval (only once per window).
            first_in_window = name not in self._pending
            self._pending[name] = value
            self.updates_coalesced += 1
            if first_in_window:
                delay = last + self.min_interval - now
                self.orb.kernel.schedule(delay, self._flush, name)
            return
        self._send(name, value)

    def _flush(self, name: str) -> None:
        value = self._pending.pop(name, None)
        if value is not None:
            self._send(name, value)

    def _send(self, name: str, value: Any) -> None:
        self._last_push[name] = self.orb.kernel.now
        out = CdrOutputStream()
        out.write_opaque(OpaquePayload(((name, value), {}), nbytes=96))
        self.orb.invoke(
            self.mirror_ref,
            "update",
            out.getvalue(),
            opaques=out.opaques,
            thread=self.thread,
            dscp=self.dscp,
            response_expected=False,  # oneway: never block the probe
        )
        self.updates_sent += 1


def start_mirror(
    orb: Orb, poa_name: str = "sysconds"
) -> tuple:
    """Activate a mirror on ``orb``; returns (servant, reference)."""
    servant = SyscondMirrorServant(orb.kernel)
    poa = orb.create_poa(poa_name)
    return servant, poa.activate_object(servant, oid="mirror")
