"""QuO contracts.

A contract encodes "the possible states the system might be in, as
well as which actions to perform when the state changes": an ordered
list of :class:`Region` objects with predicates over system
conditions.  Whenever an attached condition changes, the contract
re-evaluates; on a region change it runs exit/enter callbacks and
records a :class:`Transition`.

Regions are evaluated in order and the first true predicate wins, so
contracts read like guarded alternatives, most-specific first.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.kernel import Kernel
from repro.sim.process import Signal
from repro.quo.syscond import SystemCondition

#: Predicate signature: receives {condition name: value}.
Predicate = Callable[[Dict[str, Any]], bool]
#: Region callbacks receive the contract.
RegionCallback = Callable[["Contract"], None]


class Region:
    """One operating region.

    Parameters
    ----------
    name:
        Region label (e.g. "normal", "degraded", "overloaded").
    predicate:
        Truth test over the condition snapshot; ``None`` means "always
        true" (use for the final catch-all region).
    on_enter / on_exit:
        Adaptation actions.
    """

    def __init__(
        self,
        name: str,
        predicate: Optional[Predicate] = None,
        on_enter: Optional[RegionCallback] = None,
        on_exit: Optional[RegionCallback] = None,
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.on_enter = on_enter
        self.on_exit = on_exit

    def matches(self, snapshot: Dict[str, Any]) -> bool:
        if self.predicate is None:
            return True
        return bool(self.predicate(snapshot))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Region {self.name!r}>"


class Transition:
    """A recorded region change (observability)."""

    __slots__ = ("time", "from_region", "to_region", "snapshot")

    def __init__(
        self,
        time: float,
        from_region: Optional[str],
        to_region: str,
        snapshot: Dict[str, Any],
    ) -> None:
        self.time = time
        self.from_region = from_region
        self.to_region = to_region
        self.snapshot = snapshot

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Transition {self.from_region} -> {self.to_region} "
            f"@{self.time:.3f}>"
        )


class Contract:
    """Operating regions over a set of system conditions.

    >>> from repro.sim import Kernel
    >>> from repro.quo.syscond import ValueSC
    >>> kernel = Kernel()
    >>> load = ValueSC(kernel, "load", initial=0.0)
    >>> contract = Contract(kernel, "demo", regions=[
    ...     Region("overloaded", lambda s: s["load"] > 0.8),
    ...     Region("normal"),
    ... ])
    >>> contract.attach(load)
    >>> contract.evaluate()
    'normal'
    >>> load.set(0.95)
    >>> contract.current_region
    'overloaded'
    """

    def __init__(
        self, kernel: Kernel, name: str, regions: List[Region]
    ) -> None:
        if not regions:
            raise ValueError("a contract needs at least one region")
        names = [region.name for region in regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        self.kernel = kernel
        self.name = name
        self.regions = list(regions)
        self.conditions: Dict[str, SystemCondition] = {}
        self.current_region: Optional[str] = None
        self.transitions: List[Transition] = []
        #: Fired with each Transition.
        self.transitioned = Signal(kernel, name=f"contract.{name}")
        # Re-entrancy guard: an on_enter/on_exit callback that sets a
        # condition triggers observe -> evaluate while this evaluation
        # is mid-transition.  Nested calls are deferred and replayed
        # after the outer transition completes, keeping `transitions`
        # in causal order (see _REEVALUATION_LIMIT).
        self._evaluating = False
        self._reevaluate = False

    #: Deferred re-evaluations allowed per outer evaluate() before the
    #: contract is declared livelocked (callbacks toggling a condition
    #: back and forth would otherwise spin forever).
    _REEVALUATION_LIMIT = 64

    # ------------------------------------------------------------------
    def attach(self, condition: SystemCondition) -> None:
        """Watch ``condition``; re-evaluate whenever it changes."""
        if condition.name in self.conditions:
            raise ValueError(
                f"condition {condition.name!r} already attached to {self.name!r}"
            )
        self.conditions[condition.name] = condition
        condition.observe(lambda _condition: self.evaluate())

    def snapshot(self) -> Dict[str, Any]:
        return {name: cond.value for name, cond in self.conditions.items()}

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region {name!r} in contract {self.name!r}")

    # ------------------------------------------------------------------
    def evaluate(self) -> str:
        """Re-evaluate regions; runs callbacks on a region change.

        Re-entrant calls (an ``on_enter``/``on_exit`` callback setting a
        condition that observers turn back into ``evaluate()``) do not
        recurse: the nested request is deferred until the in-flight
        transition has fully committed, then replayed, so transition
        records stay causally ordered and callbacks never nest.
        """
        if self._evaluating:
            self._reevaluate = True
            # The outer call replays after its transition commits; the
            # region it lands on is the authoritative answer.
            return self.current_region if self.current_region is not None \
                else self.regions[-1].name
        self._evaluating = True
        try:
            result = self._evaluate_once()
            replays = 0
            while self._reevaluate:
                self._reevaluate = False
                replays += 1
                if replays > self._REEVALUATION_LIMIT:
                    raise RuntimeError(
                        f"contract {self.name!r}: region callbacks keep "
                        f"re-triggering evaluation (> "
                        f"{self._REEVALUATION_LIMIT} deferred replays); "
                        "likely a condition-setting callback livelock")
                result = self._evaluate_once()
        finally:
            self._evaluating = False
            self._reevaluate = False
        return result

    def _evaluate_once(self) -> str:
        snapshot = self.snapshot()
        matched = None
        for region in self.regions:
            if region.matches(snapshot):
                matched = region
                break
        if matched is None:
            raise RuntimeError(
                f"contract {self.name!r}: no region matches {snapshot!r} "
                "(add a catch-all region)"
            )
        if matched.name == self.current_region:
            return matched.name
        previous = self.current_region
        if previous is not None:
            previous_region = self.region(previous)
            if previous_region.on_exit is not None:
                previous_region.on_exit(self)
        self.current_region = matched.name
        transition = Transition(
            self.kernel.now, previous, matched.name, snapshot
        )
        self.transitions.append(transition)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("quo", "region.transition", contract=self.name,
                           from_region=previous, to_region=matched.name)
        if matched.on_enter is not None:
            matched.on_enter(self)
        self.transitioned.fire(transition)
        return matched.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Contract {self.name!r} region={self.current_region!r}>"
