"""QuO delegates: in-band adaptive proxies.

"Delegates are proxies that can be inserted into the path of object
interactions transparently ... When a method call or return is made,
the delegate checks the system state, as recorded by a set of
contracts, and selects a behavior based upon it."

A :class:`Delegate` wraps a generated stub.  For each outgoing call it
looks up the behavior registered for the contract's current region:

* ``None`` (no behavior registered) — pass the call through;
* a callable ``behavior(delegate, operation, args, proceed)`` — full
  control: it may tweak QoS knobs on the stub (priority, DSCP), drop
  the call (return without invoking ``proceed``), or transform
  arguments before proceeding.

The delegate quacks like the stub, so application code is unchanged —
the QuO insertion-transparency property.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.process import Signal
from repro.quo.contract import Contract

#: behavior(delegate, operation_name, args, proceed) -> Signal | None
Behavior = Callable[["Delegate", str, tuple, Callable[..., Signal]], Any]


class Delegate:
    """Wraps a stub with per-region call behaviors."""

    def __init__(
        self,
        stub: Any,
        contract: Contract,
        behaviors: Optional[Dict[str, Behavior]] = None,
    ) -> None:
        # Avoid __setattr__ recursion by writing through __dict__.
        self.__dict__["_stub"] = stub
        self.__dict__["_contract"] = contract
        self.__dict__["_behaviors"] = dict(behaviors or {})
        self.__dict__["calls_passed"] = 0
        self.__dict__["calls_adapted"] = 0
        self.__dict__["calls_dropped"] = 0

    # ------------------------------------------------------------------
    @property
    def stub(self) -> Any:
        return self._stub

    @property
    def contract(self) -> Contract:
        return self._contract

    def set_behavior(self, region_name: str, behavior: Behavior) -> None:
        self._behaviors[region_name] = behavior

    # ------------------------------------------------------------------
    # Transparent proxying
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        target = getattr(self._stub, name)
        if not callable(target):
            return target

        def adapted(*args: Any) -> Any:
            return self._dispatch(name, target, args)

        adapted.__name__ = name
        return adapted

    def __setattr__(self, name: str, value: Any) -> None:
        # QoS knobs and other attributes flow through to the stub.
        setattr(self._stub, name, value)

    def _dispatch(self, operation: str, target: Callable, args: tuple) -> Any:
        region = self._contract.current_region
        if region is None:
            region = self._contract.evaluate()
        behavior = self._behaviors.get(region)
        if behavior is None:
            self.__dict__["calls_passed"] += 1
            return target(*args)

        proceeded = {"flag": False}

        def proceed(*new_args: Any) -> Any:
            proceeded["flag"] = True
            return target(*(new_args or args))

        result = behavior(self, operation, args, proceed)
        if proceeded["flag"]:
            self.__dict__["calls_adapted"] += 1
        else:
            self.__dict__["calls_dropped"] += 1
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Delegate around {self._stub!r} "
            f"region={self._contract.current_region!r}>"
        )
