"""Qoskets: reusable QoS behavior bundles.

The paper cites its companion work [Qosket:02] ("Packaging Quality of
Service Control Behaviors for Reuse"): a *qosket* groups the contract,
the system conditions it watches, and the adaptive behaviors it
installs, so one adaptation policy can be attached to many
applications.

:class:`Qosket` is the packaging mechanism: subclass it (or compose
one imperatively), then :meth:`apply` it to a stub to get a wired-up
:class:`~repro.quo.delegate.Delegate`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.kernel import Kernel
from repro.quo.contract import Contract
from repro.quo.delegate import Behavior, Delegate
from repro.quo.syscond import SystemCondition


class Qosket:
    """A packaged adaptation policy.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    contract:
        The packaged contract (regions + callbacks already configured).
    conditions:
        System conditions to attach to the contract.
    behaviors:
        Per-region in-band behaviors installed on every delegate this
        qosket produces.
    """

    def __init__(
        self,
        kernel: Kernel,
        contract: Contract,
        conditions: Optional[List[SystemCondition]] = None,
        behaviors: Optional[Dict[str, Behavior]] = None,
    ) -> None:
        self.kernel = kernel
        self.contract = contract
        self.conditions = list(conditions or [])
        self.behaviors = dict(behaviors or {})
        self.delegates: List[Delegate] = []
        for condition in self.conditions:
            if condition.name not in contract.conditions:
                contract.attach(condition)

    def condition(self, name: str) -> SystemCondition:
        return self.contract.conditions[name]

    def start(self) -> None:
        """Start every periodic condition and settle the contract."""
        for condition in self.contract.conditions.values():
            start = getattr(condition, "start", None)
            if start is not None:
                start()
        self.contract.evaluate()

    def stop(self) -> None:
        for condition in self.contract.conditions.values():
            stop = getattr(condition, "stop", None)
            if stop is not None:
                stop()

    def apply(self, stub: Any) -> Delegate:
        """Wrap ``stub`` in a delegate carrying this qosket's behaviors."""
        delegate = Delegate(stub, self.contract, behaviors=self.behaviors)
        self.delegates.append(delegate)
        return delegate

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Qosket contract={self.contract.name!r} "
            f"delegates={len(self.delegates)}>"
        )
