"""Quality Objects (QuO): the QoS-adaptive middleware layer.

QuO (paper section 2.1) lets an application specify "(1) its QoS
requirements, (2) the system elements that must be monitored and
controlled ... and (3) the behavior for adapting to QoS variations
that occur at run-time."  Its three component kinds map one-to-one
onto this package:

``contract``
    *Contracts* encode operating regions and the actions to perform
    when the region changes.

``syscond``
    *System condition objects* are "wrapper facades that provide
    consistent interfaces to infrastructure mechanisms, services, and
    managers" — here they probe the simulated OS/network substrate
    (observed frame rate, loss, CPU load, reservation status) and
    control knobs (DSCP, filter level).

``delegate``
    *Delegates* are in-band proxies "inserted into the path of object
    interactions transparently" that pick a behavior per call based on
    the contract's current region.

``qosket``
    *Qoskets* package contracts + sysconds + behaviors for reuse
    [Qosket:02].
"""

from repro.quo.contract import Contract, Region, Transition
from repro.quo.delegate import Delegate
from repro.quo.qosket import Qosket
from repro.quo.remote import (
    SyscondMirrorServant,
    SyscondPublisher,
    start_mirror,
)
from repro.quo.syscond import (
    CpuUtilizationSC,
    DeliveredRateSC,
    FaultReporterSC,
    LossRateSC,
    ReservationStatusSC,
    SystemCondition,
    ValueSC,
)

__all__ = [
    "Contract",
    "CpuUtilizationSC",
    "Delegate",
    "FaultReporterSC",
    "DeliveredRateSC",
    "LossRateSC",
    "Qosket",
    "Region",
    "ReservationStatusSC",
    "SyscondMirrorServant",
    "SyscondPublisher",
    "SystemCondition",
    "Transition",
    "ValueSC",
    "start_mirror",
]
